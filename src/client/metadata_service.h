// The namespace-operation surface of DPFS metadata, independent of where
// the metadata lives.
//
// Two implementations exist:
//   MetadataManager       (metadata.h)        — embedded, runs SQL against a
//                                               metadb::ShardedDatabase in
//                                               this process. The paper's
//                                               semantics and the default.
//   RemoteMetadataManager (remote_metadata.h) — speaks the kMeta* wire
//                                               opcodes to a dpfs-metad
//                                               process that owns the
//                                               database (extension:
//                                               `metadata_endpoint`).
//
// FileSystem consumes only this interface, so the choice is a connect-time
// decision, invisible to everything above it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/brick_map.h"
#include "layout/hpf.h"
#include "layout/placement.h"
#include "net/connection.h"

namespace dpfs::client {

struct ServerInfo {
  std::string name;       // e.g. "ccn40.mcs.anl.gov" in the paper
  net::Endpoint endpoint;
  std::uint64_t capacity_bytes = 0;
  std::uint32_t performance = 1;  // 1 = fastest class (§4.1)
};

/// Everything needed to address a file's bricks.
struct FileMeta {
  std::string path;  // normalized DPFS path, e.g. "/home/xhshen/dpfs.test"
  std::string owner;
  std::uint32_t permission = 0644;
  std::uint64_t size_bytes = 0;
  layout::FileLevel level = layout::FileLevel::kLinear;
  std::uint64_t element_size = 1;
  layout::Shape array_shape;             // empty for raw linear streams
  std::uint64_t brick_bytes = 0;         // linear level
  layout::Shape brick_shape;             // multidim level
  std::optional<layout::HpfPattern> pattern;  // array level
  layout::Shape chunk_grid;              // array level process grid

  /// Rebuilds the BrickMap this metadata describes.
  [[nodiscard]] Result<layout::BrickMap> MakeBrickMap() const;
};

/// A file's metadata joined with its brick placement and server info,
/// everything DPFS-Open() needs.
struct FileRecord {
  FileMeta meta;
  std::vector<ServerInfo> servers;  // index = layout::ServerId
  layout::BrickDistribution distribution;
  /// Replica placements, ranks 1..R-1 (replication extension,
  /// docs/REPLICATION.md). Empty for unreplicated files (R = 1).
  std::vector<layout::BrickDistribution> replicas;

  /// Total copies of every brick, primary included.
  [[nodiscard]] std::uint32_t replication() const noexcept {
    return 1 + static_cast<std::uint32_t>(replicas.size());
  }
  [[nodiscard]] const layout::BrickDistribution& rank_distribution(
      std::uint32_t rank) const {
    return rank == 0 ? distribution : replicas.at(rank - 1);
  }
};

class MetadataService {
 public:
  virtual ~MetadataService() = default;

  // --- DPFS_SERVER -------------------------------------------------------
  virtual Status RegisterServer(const ServerInfo& server) = 0;
  virtual Status UnregisterServer(const std::string& name) = 0;
  virtual Result<std::vector<ServerInfo>> ListServers() = 0;
  virtual Result<ServerInfo> LookupServer(const std::string& name) = 0;

  // --- files -------------------------------------------------------------
  /// Creates attribute + distribution rows and links the file into its
  /// parent directory, atomically. `server_names[i]` is the server holding
  /// distribution bricklist i. `replicas` carries replica ranks 1..R-1
  /// (replication extension); each rank stores one distribution row per
  /// server, exactly like the primary.
  virtual Status CreateFile(
      const FileMeta& meta, const std::vector<std::string>& server_names,
      const layout::BrickDistribution& distribution,
      const std::vector<layout::BrickDistribution>& replicas = {}) = 0;
  virtual Result<FileRecord> LookupFile(const std::string& path) = 0;
  virtual Status UpdateFileSize(const std::string& path,
                                std::uint64_t size_bytes) = 0;
  virtual Status SetPermission(const std::string& path,
                               std::uint32_t permission) = 0;
  virtual Status SetOwner(const std::string& path,
                          const std::string& owner) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Result<bool> FileExists(const std::string& path) = 0;
  /// Renames a file's metadata (attribute + distribution rows + directory
  /// links) atomically. Callers must rename the subfiles on every server
  /// too — FileSystem::Rename orchestrates both.
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;

  // --- access log (extension) --------------------------------------------
  /// Appends one access observation (called by FileSystem when access
  /// logging is on).
  virtual Status LogAccess(const std::string& path, bool is_write,
                           std::uint64_t requests,
                           std::uint64_t transfer_bytes,
                           std::uint64_t useful_bytes) = 0;
  struct AccessSummary {
    std::uint64_t accesses = 0;
    std::uint64_t requests = 0;
    std::uint64_t transfer_bytes = 0;
    std::uint64_t useful_bytes = 0;

    [[nodiscard]] double efficiency() const noexcept {
      return transfer_bytes == 0 ? 1.0
                                 : static_cast<double>(useful_bytes) /
                                       static_cast<double>(transfer_bytes);
    }
  };
  virtual Result<AccessSummary> SummarizeAccess(const std::string& path) = 0;
  virtual Status ClearAccessLog(const std::string& path) = 0;

  // --- directories -------------------------------------------------------
  virtual Status MakeDirectory(const std::string& path) = 0;
  /// Fails on non-empty directories unless `recursive`.
  virtual Status RemoveDirectory(const std::string& path, bool recursive) = 0;
  virtual Result<bool> DirectoryExists(const std::string& path) = 0;
  struct Listing {
    std::vector<std::string> directories;  // names, not full paths
    std::vector<std::string> files;
  };
  virtual Result<Listing> ListDirectory(const std::string& path) = 0;
};

}  // namespace dpfs::client
