// DPFS metadata management on top of the embedded SQL database (§5).
//
// Exactly the paper's four tables:
//   DPFS_SERVER            — one row per I/O server: name, endpoint,
//                            capacity, normalized performance number.
//   DPFS_FILE_DISTRIBUTION — one row per (file, server, replica rank): the
//                            subfile name and the bricklist text
//                            ("0,2,6,..."). Rank 0 is the paper's row;
//                            ranks >= 1 exist only for replicated files
//                            (extension, docs/REPLICATION.md).
//   DPFS_DIRECTORY         — one row per directory: sub-dirs and files as
//                            comma-separated lists.
//   DPFS_FILE_ATTR         — one row per file: owner, permission, size,
//                            filelevel, striping geometry, HPF pattern.
//
// All multi-row mutations (file creation touches three tables) run inside a
// database transaction, which is the paper's argument for using a database
// in the first place.
//
// Sharding (extension, docs/METADATA_SCHEMA.md "Sharding"): the manager
// runs on a metadb::ShardedDatabase. A file's DPFS_FILE_ATTR,
// DPFS_FILE_DISTRIBUTION, and DPFS_ACCESS_LOG rows co-locate on its
// path-hash home shard; a directory's DPFS_DIRECTORY row lives on the
// directory's own shard; DPFS_SERVER is tiny and read-mostly, so it is
// replicated to every shard on register (lookups stay single-shard).
// Mutations spanning shards commit in ascending shard order behind a
// persisted intent record on the home shard; a crash between shard commits
// is rolled forward by the idempotent repair pass in Attach. If a
// cross-shard mutation fails mid-protocol *without* a crash (failpoint,
// disk error), the error is surfaced and the pending intent likewise waits
// for the next Attach.
//
// Thread safety: reads take no manager-level lock (each shard's SELECT path
// is reader-shared); mutations serialize per involved shard via the
// manager's shard transaction mutexes, acquired in ascending index order.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "client/metadata_service.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "layout/brick_map.h"
#include "layout/hpf.h"
#include "layout/placement.h"
#include "metadb/database.h"
#include "metadb/sharded_database.h"
#include "net/connection.h"

namespace dpfs::client {

class MetadataManager final : public MetadataService {
 public:
  /// Wraps an open (possibly sharded) database: creates the DPFS tables on
  /// every shard if missing, then rolls forward any cross-shard intent
  /// records a crash left behind.
  static Result<std::unique_ptr<MetadataManager>> Attach(
      std::shared_ptr<metadb::ShardedDatabase> db);
  /// Single-database compatibility shim: adopts `db` as a 1-shard facade.
  static Result<std::unique_ptr<MetadataManager>> Attach(
      std::shared_ptr<metadb::Database> db);

  // --- DPFS_SERVER -------------------------------------------------------
  Status RegisterServer(const ServerInfo& server) override;
  Status UnregisterServer(const std::string& name) override;
  Result<std::vector<ServerInfo>> ListServers() override;
  Result<ServerInfo> LookupServer(const std::string& name) override;

  // --- files -------------------------------------------------------------
  Status CreateFile(
      const FileMeta& meta, const std::vector<std::string>& server_names,
      const layout::BrickDistribution& distribution,
      const std::vector<layout::BrickDistribution>& replicas = {}) override;
  Result<FileRecord> LookupFile(const std::string& path) override;
  Status UpdateFileSize(const std::string& path,
                        std::uint64_t size_bytes) override;
  Status SetPermission(const std::string& path,
                       std::uint32_t permission) override;
  Status SetOwner(const std::string& path, const std::string& owner) override;
  Status DeleteFile(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;

  // --- access log (extension) ---------------------------------------------
  Status LogAccess(const std::string& path, bool is_write,
                   std::uint64_t requests, std::uint64_t transfer_bytes,
                   std::uint64_t useful_bytes) override;
  Result<AccessSummary> SummarizeAccess(const std::string& path) override;
  Status ClearAccessLog(const std::string& path) override;

  // --- directories -------------------------------------------------------
  Status MakeDirectory(const std::string& path) override;
  Status RemoveDirectory(const std::string& path, bool recursive) override;
  Result<bool> DirectoryExists(const std::string& path) override;
  Result<Listing> ListDirectory(const std::string& path) override;

  /// Shard 0 — the whole database when unsharded. Compatibility accessor
  /// for single-shard consumers (the shell's `sql` command, tests);
  /// cross-shard consumers iterate sharded_db() instead.
  [[nodiscard]] metadb::Database& db() noexcept { return db_->shard(0); }
  [[nodiscard]] metadb::ShardedDatabase& sharded_db() noexcept { return *db_; }

 private:
  class ShardLocks;

  explicit MetadataManager(std::shared_ptr<metadb::ShardedDatabase> db);

  [[nodiscard]] std::size_t ShardOf(std::string_view path) const {
    return db_->ShardForPath(path);
  }
  [[nodiscard]] metadb::Database& Shard(std::size_t index) {
    return db_->shard(index);
  }

  Status EnsureTables();
  /// Upgrades a pre-replication DPFS_FILE_DISTRIBUTION table (4 columns)
  /// in place: existing rows become replica rank 0. metadb has no ALTER
  /// TABLE, so this is a transactional read → drop → recreate → re-insert.
  Status MigrateDistributionTable(metadb::Database& shard);
  /// Rolls forward every pending cross-shard intent (idempotent; called
  /// from Attach before the manager is shared, so it takes no locks).
  Status RepairIntents();
  Status ApplyIntent(const std::string& op, const std::string& src,
                     const std::string& dst, const std::string& payload);

  /// Directory-list edits, idempotent so the repair pass can re-run them:
  /// link is add-if-absent, unlink is remove-if-present; a missing
  /// directory row is a silent no-op (the row's mutation already committed
  /// or the directory is gone). `file` selects the files vs sub_dirs column.
  Status LinkName(metadb::Database& db, const std::string& dir,
                  const std::string& name, bool file);
  Status UnlinkName(metadb::Database& db, const std::string& dir,
                    const std::string& name, bool file);

  Status UpsertIntent(metadb::Database& home, const std::string& op,
                      const std::string& src, const std::string& dst,
                      const std::string& payload);
  Status DeleteIntent(metadb::Database& home, const std::string& src);
  /// Moves a renamed file's rows onto the destination home shard:
  /// delete-then-insert from the intent payload, idempotent.
  Status ApplyRenamePayload(metadb::Database& db, const std::string& dst,
                            const std::string& payload);

  std::shared_ptr<metadb::ShardedDatabase> db_;
  /// One transaction mutex per shard: Database allows a single open
  /// transaction, so writers to a shard must not interleave statements.
  /// Locked in ascending shard order (total order => no deadlock).
  std::vector<std::unique_ptr<Mutex>> shard_mu_;
};

}  // namespace dpfs::client
