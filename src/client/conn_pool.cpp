#include "client/conn_pool.h"

#include "common/failpoint.h"

namespace dpfs::client {

PooledConnection::~PooledConnection() {
  if (pool_ != nullptr && conn_ != nullptr && !poisoned_) {
    pool_->Release(std::move(conn_));
  }
}

Result<PooledConnection> ConnectionPool::Acquire(
    const net::Endpoint& endpoint) {
  // Simulates a refused/unreachable server before any pooled or fresh
  // connection is touched (kUnavailable by default, so callers retry).
  DPFS_FAILPOINT_RETURN("client.connect");
  const auto key = std::make_pair(endpoint.host, endpoint.port);
  {
    MutexLock lock(mu_);
    auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<net::ServerConnection> conn =
          std::move(it->second.back());
      it->second.pop_back();
      return PooledConnection(this, std::move(conn));
    }
  }
  DPFS_ASSIGN_OR_RETURN(net::ServerConnection conn,
                        net::ServerConnection::Connect(endpoint));
  return PooledConnection(
      this, std::make_unique<net::ServerConnection>(std::move(conn)));
}

void ConnectionPool::Release(std::unique_ptr<net::ServerConnection> conn) {
  MutexLock lock(mu_);
  const auto key =
      std::make_pair(conn->endpoint().host, conn->endpoint().port);
  idle_[key].push_back(std::move(conn));
}

void ConnectionPool::Clear() {
  MutexLock lock(mu_);
  idle_.clear();
}

std::size_t ConnectionPool::idle_count() const {
  MutexLock lock(mu_);
  std::size_t count = 0;
  for (const auto& [key, conns] : idle_) count += conns.size();
  return count;
}

}  // namespace dpfs::client
