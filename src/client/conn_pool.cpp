#include "client/conn_pool.h"

#include "common/failpoint.h"
#include "common/metrics.h"

namespace dpfs::client {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
// acquire_us covers the whole checkout — pool lookup plus any fresh dial —
// so reconnect storms show up as a fat tail.
struct PoolMetrics {
  metrics::Counter& acquires = metrics::GetCounter("conn_pool.acquires");
  metrics::Counter& pool_hits = metrics::GetCounter("conn_pool.pool_hits");
  metrics::Counter& dials = metrics::GetCounter("conn_pool.dials");
  metrics::Counter& dial_failures =
      metrics::GetCounter("conn_pool.dial_failures");
  metrics::Counter& poisoned = metrics::GetCounter("conn_pool.poisoned");
  // Connections found peer-closed by the staleness probe (a server
  // restarted while the stream was idle or parked) and replaced by a fresh
  // dial instead of failing the caller's next request.
  metrics::Counter& redials = metrics::GetCounter("conn_pool.redials");
  metrics::Histogram& acquire_us =
      metrics::GetHistogram("conn_pool.acquire_us");
};
PoolMetrics& Metrics() {
  static PoolMetrics m;
  return m;
}
}  // namespace

Status EnsureFreshConnection(std::optional<net::ServerConnection>& conn,
                             const net::Endpoint& endpoint) {
  if (conn.has_value() && conn->PeerClosed()) {
    conn.reset();
    Metrics().redials.Add();
  }
  if (!conn.has_value()) {
    DPFS_ASSIGN_OR_RETURN(conn, net::ServerConnection::Connect(endpoint));
  }
  return Status::Ok();
}

PooledConnection::~PooledConnection() {
  if (pool_ != nullptr && conn_ != nullptr) {
    if (poisoned_) {
      Metrics().poisoned.Add();
    } else {
      pool_->Release(std::move(conn_));
    }
  }
}

Result<PooledConnection> ConnectionPool::Acquire(
    const net::Endpoint& endpoint) {
  Metrics().acquires.Add();
  metrics::ScopedTimer timer(Metrics().acquire_us);
  // Simulates a refused/unreachable server before any pooled or fresh
  // connection is touched (kUnavailable by default, so callers retry).
  DPFS_FAILPOINT_RETURN("client.connect");
  const auto key = std::make_pair(endpoint.host, endpoint.port);
  {
    MutexLock lock(mu_);
    auto it = idle_.find(key);
    while (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<net::ServerConnection> conn =
          std::move(it->second.back());
      it->second.pop_back();
      if (conn->PeerClosed()) {
        // Stale pooled stream (the server restarted while it sat idle):
        // drop it and keep probing — the same redial semantics
        // EnsureFreshConnection gives long-held connections.
        Metrics().redials.Add();
        continue;
      }
      Metrics().pool_hits.Add();
      return PooledConnection(this, std::move(conn));
    }
  }
  Metrics().dials.Add();
  auto dialed = net::ServerConnection::Connect(endpoint);
  if (!dialed.ok()) {
    Metrics().dial_failures.Add();
    return dialed.status();
  }
  return PooledConnection(this, std::make_unique<net::ServerConnection>(
                                    std::move(dialed).value()));
}

void ConnectionPool::Release(std::unique_ptr<net::ServerConnection> conn) {
  MutexLock lock(mu_);
  const auto key =
      std::make_pair(conn->endpoint().host, conn->endpoint().port);
  idle_[key].push_back(std::move(conn));
}

void ConnectionPool::Clear() {
  MutexLock lock(mu_);
  idle_.clear();
}

std::size_t ConnectionPool::idle_count() const {
  MutexLock lock(mu_);
  std::size_t count = 0;
  for (const auto& [key, conns] : idle_) count += conns.size();
  return count;
}

}  // namespace dpfs::client
