#include "client/collective.h"

#include "common/metrics.h"

namespace dpfs::client {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
struct CollectiveMetrics {
  metrics::Counter& transfers = metrics::GetCounter("collective.transfers");
  metrics::Counter& requests = metrics::GetCounter("collective.requests");
  metrics::Counter& combined_requests =
      metrics::GetCounter("collective.combined_requests");
  metrics::Counter& retries = metrics::GetCounter("collective.retries");
  metrics::Counter& peer_aborts =
      metrics::GetCounter("collective.peer_aborts");
};
CollectiveMetrics& Metrics() {
  static CollectiveMetrics m;
  return m;
}
}  // namespace

CollectiveFile::CollectiveFile(std::shared_ptr<FileSystem> fs,
                               std::vector<FileHandle> handles)
    : fs_(std::move(fs)),
      handles_(std::move(handles)),
      barrier_(static_cast<std::ptrdiff_t>(handles_.size())),
      phase_failed_(handles_.size(), 0),
      views_(handles_.size()) {}

Result<std::unique_ptr<CollectiveFile>> CollectiveFile::Open(
    std::shared_ptr<FileSystem> fs, const std::string& path,
    std::uint32_t num_ranks) {
  if (num_ranks == 0) {
    return InvalidArgumentError("collective file needs at least one rank");
  }
  std::vector<FileHandle> handles;
  handles.reserve(num_ranks);
  for (std::uint32_t rank = 0; rank < num_ranks; ++rank) {
    DPFS_ASSIGN_OR_RETURN(FileHandle handle, fs->Open(path));
    handle.client_id = rank;
    handles.push_back(std::move(handle));
  }
  return std::unique_ptr<CollectiveFile>(
      new CollectiveFile(std::move(fs), std::move(handles)));
}

Result<std::unique_ptr<CollectiveFile>> CollectiveFile::Create(
    std::shared_ptr<FileSystem> fs, const std::string& path,
    const CreateOptions& options, std::uint32_t num_ranks) {
  DPFS_RETURN_IF_ERROR(fs->Create(path, options).status());
  return Open(std::move(fs), path, num_ranks);
}

Status CollectiveFile::SetView(std::uint32_t rank,
                               const layout::Region& region) {
  if (rank >= handles_.size()) {
    return OutOfRangeError("rank " + std::to_string(rank) + " out of range");
  }
  const layout::BrickMap& map = handles_[rank].map;
  if (!map.has_array_shape()) {
    return InvalidArgumentError(
        "collective views require an array-shaped file");
  }
  DPFS_RETURN_IF_ERROR(layout::ValidateRegion(map.array_shape(), region));
  MutexLock lock(mu_);
  views_[rank] = region;
  return Status::Ok();
}

Status CollectiveFile::SetHpfViews(const layout::HpfPattern& pattern,
                                   const layout::ProcessGrid& grid) {
  if (grid.num_processes() != handles_.size()) {
    return InvalidArgumentError(
        "grid process count does not match collective rank count");
  }
  const layout::Shape& array = handles_.front().map.array_shape();
  for (std::uint32_t rank = 0; rank < handles_.size(); ++rank) {
    DPFS_ASSIGN_OR_RETURN(
        const layout::Region chunk,
        layout::ChunkForProcess(array, pattern, grid, rank));
    DPFS_RETURN_IF_ERROR(SetView(rank, chunk));
  }
  return Status::Ok();
}

std::optional<layout::Region> CollectiveFile::view(std::uint32_t rank) const {
  MutexLock lock(mu_);
  return rank < views_.size() ? views_[rank] : std::nullopt;
}

IoReport CollectiveFile::report() const {
  MutexLock lock(mu_);
  return total_report_;
}

Status CollectiveFile::Transfer(std::uint32_t rank, ByteSpan write_data,
                                MutableByteSpan read_buffer,
                                const IoOptions& options) {
  if (rank >= handles_.size()) {
    return OutOfRangeError("rank " + std::to_string(rank) + " out of range");
  }
  // Reset my flag from any previous phase; nobody reads it until after the
  // first barrier below.
  phase_failed_[rank] = 0;

  std::optional<layout::Region> region;
  {
    MutexLock lock(mu_);
    region = views_[rank];
  }
  Status my_status =
      region.has_value()
          ? Status::Ok()
          : InvalidArgumentError("rank " + std::to_string(rank) +
                                 " has no view set");
  if (my_status.ok()) {
    IoReport report;
    my_status = write_data.data() != nullptr
                    ? fs_->WriteRegion(handles_[rank], *region, write_data,
                                       options, &report)
                    : fs_->ReadRegion(handles_[rank], *region, read_buffer,
                                      options, &report);
    Metrics().transfers.Add();
    Metrics().requests.Add(report.requests);
    Metrics().combined_requests.Add(report.combined_requests);
    Metrics().retries.Add(report.retries + report.busy_retries);
    MutexLock lock(mu_);
    total_report_.requests += report.requests;
    total_report_.combined_requests += report.combined_requests;
    total_report_.transfer_bytes += report.transfer_bytes;
    total_report_.useful_bytes += report.useful_bytes;
    total_report_.retries += report.retries;
    total_report_.busy_retries += report.busy_retries;
    total_report_.backoff_ms += report.backoff_ms;
  }
  if (!my_status.ok()) phase_failed_[rank] = 1;

  // Phase close: all flags are written before anyone reads them.
  barrier_.arrive_and_wait();
  std::size_t phase_total = 0;
  for (const std::uint8_t failed : phase_failed_) phase_total += failed;
  // Read-side fence: no rank may start the next phase (and reset its flag)
  // until everyone has scanned this phase's flags.
  barrier_.arrive_and_wait();

  if (!my_status.ok()) return my_status;
  if (phase_total > 0) {
    Metrics().peer_aborts.Add();
    return AbortedError("collective peer failed (" +
                        std::to_string(phase_total) + " rank(s))");
  }
  return Status::Ok();
}

Status CollectiveFile::WriteAll(std::uint32_t rank, ByteSpan data,
                                const IoOptions& options) {
  return Transfer(rank, data, {}, options);
}

Status CollectiveFile::ReadAll(std::uint32_t rank, MutableByteSpan out,
                               const IoOptions& options) {
  return Transfer(rank, {}, out, options);
}

}  // namespace dpfs::client
