// Client-side brick cache (extension).
//
// The paper leans on the *server's* local file system cache (§2 footnote);
// this adds the complementary client-side layer: whole-brick images cached
// by (file, brick) with LRU eviction by byte budget. Reads served from the
// cache skip the network entirely; writes invalidate the bricks they touch
// (write-invalidate keeps the cache trivially coherent for a single
// FileSystem instance — cross-client coherence is out of scope, as it was
// for the paper).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "layout/brick_map.h"

namespace dpfs::client {

class BrickCache {
 public:
  explicit BrickCache(std::uint64_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Returns the cached whole-brick image, refreshing its LRU position.
  std::optional<Bytes> Get(const std::string& file, layout::BrickId brick);

  /// Inserts (or replaces) a brick image; evicts LRU entries over budget.
  /// Images larger than the whole budget are not cached.
  void Put(const std::string& file, layout::BrickId brick, Bytes image);

  /// Drops one brick / every brick of a file / everything.
  void Invalidate(const std::string& file, layout::BrickId brick);
  void InvalidateFile(const std::string& file);
  void Clear();

  [[nodiscard]] std::uint64_t size_bytes() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  using Key = std::pair<std::string, layout::BrickId>;
  struct Entry {
    Bytes image;
    std::list<Key>::iterator lru_pos;
  };
  void EvictOverBudgetLocked() DPFS_REQUIRES(mu_);

  mutable Mutex mu_;
  const std::uint64_t capacity_bytes_;  // immutable after construction
  std::uint64_t used_bytes_ DPFS_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ DPFS_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ DPFS_GUARDED_BY(mu_) = 0;
  std::map<Key, Entry> entries_ DPFS_GUARDED_BY(mu_);
  std::list<Key> lru_ DPFS_GUARDED_BY(mu_);  // front = most recent
};

}  // namespace dpfs::client
