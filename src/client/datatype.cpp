#include "client/datatype.h"

#include <algorithm>

namespace dpfs::client {

namespace {
/// Guard against pathological compositions in user code.
constexpr std::uint64_t kMaxExtents = 1ull << 22;  // ~4M extents
}  // namespace

std::vector<ByteExtent> CoalesceExtents(std::vector<ByteExtent> extents) {
  std::sort(extents.begin(), extents.end(),
            [](const ByteExtent& a, const ByteExtent& b) {
              return a.offset < b.offset;
            });
  std::vector<ByteExtent> merged;
  for (const ByteExtent& extent : extents) {
    if (extent.length == 0) continue;
    if (!merged.empty() &&
        extent.offset <= merged.back().offset + merged.back().length) {
      const std::uint64_t end =
          std::max(merged.back().offset + merged.back().length,
                   extent.offset + extent.length);
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(extent);
    }
  }
  return merged;
}

Datatype Datatype::FromExtents(std::vector<ByteExtent> extents,
                               std::uint64_t logical_extent) {
  auto payload = std::make_shared<Payload>();
  payload->extents = CoalesceExtents(std::move(extents));
  for (const ByteExtent& extent : payload->extents) {
    payload->size += extent.length;
  }
  std::uint64_t span = 0;
  for (const ByteExtent& extent : payload->extents) {
    span = std::max(span, extent.offset + extent.length);
  }
  payload->extent = std::max(span, logical_extent);
  return Datatype(std::move(payload));
}

Datatype Datatype::Bytes(std::uint64_t n) {
  std::vector<ByteExtent> extents;
  if (n > 0) extents.push_back({0, n});
  return FromExtents(std::move(extents), n);
}

Result<Datatype> Datatype::Contiguous(std::uint64_t count,
                                      const Datatype& base) {
  if (count * base.num_extents() > kMaxExtents) {
    return ResourceExhaustedError("datatype too fragmented");
  }
  std::vector<ByteExtent> extents;
  extents.reserve(count * base.num_extents());
  const std::uint64_t step = base.extent();
  for (std::uint64_t i = 0; i < count; ++i) {
    for (const ByteExtent& extent : base.extents()) {
      extents.push_back({i * step + extent.offset, extent.length});
    }
  }
  return FromExtents(std::move(extents), count * step);
}

Result<Datatype> Datatype::Vector(std::uint64_t count,
                                  std::uint64_t blocklength,
                                  std::uint64_t stride, const Datatype& base) {
  if (stride < blocklength) {
    return InvalidArgumentError(
        "vector stride must be >= blocklength (no overlap)");
  }
  if (count * blocklength * base.num_extents() > kMaxExtents) {
    return ResourceExhaustedError("datatype too fragmented");
  }
  std::vector<ByteExtent> extents;
  extents.reserve(count * blocklength * base.num_extents());
  const std::uint64_t step = base.extent();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t block_base = i * stride * step;
    for (std::uint64_t j = 0; j < blocklength; ++j) {
      for (const ByteExtent& extent : base.extents()) {
        extents.push_back({block_base + j * step + extent.offset,
                           extent.length});
      }
    }
  }
  // Logical extent of a vector covers through the last block.
  const std::uint64_t span =
      count == 0 ? 0 : ((count - 1) * stride + blocklength) * step;
  return FromExtents(std::move(extents), span);
}

Result<Datatype> Datatype::Indexed(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& blocks,
    const Datatype& base) {
  std::uint64_t total_blocks = 0;
  for (const auto& [displ, blocklen] : blocks) total_blocks += blocklen;
  if (total_blocks * base.num_extents() > kMaxExtents) {
    return ResourceExhaustedError("datatype too fragmented");
  }
  std::vector<ByteExtent> extents;
  const std::uint64_t step = base.extent();
  std::uint64_t span = 0;
  for (const auto& [displ, blocklen] : blocks) {
    for (std::uint64_t j = 0; j < blocklen; ++j) {
      for (const ByteExtent& extent : base.extents()) {
        extents.push_back({(displ + j) * step + extent.offset, extent.length});
      }
    }
    span = std::max(span, (displ + blocklen) * step);
  }
  return FromExtents(std::move(extents), span);
}

Result<Datatype> Datatype::Subarray(
    const std::vector<std::uint64_t>& array_shape,
    const std::vector<std::uint64_t>& lower,
    const std::vector<std::uint64_t>& extent, std::uint64_t element_bytes) {
  if (array_shape.empty() || array_shape.size() != lower.size() ||
      array_shape.size() != extent.size()) {
    return InvalidArgumentError("subarray: rank mismatch");
  }
  if (element_bytes == 0) {
    return InvalidArgumentError("subarray: element size must be >= 1");
  }
  std::uint64_t rows = 1;
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    if (extent[d] == 0 || lower[d] + extent[d] > array_shape[d]) {
      return InvalidArgumentError("subarray: region out of bounds in dim " +
                                  std::to_string(d));
    }
    if (d + 1 < array_shape.size()) rows *= extent[d];
  }
  if (rows > kMaxExtents) {
    return ResourceExhaustedError("subarray too fragmented");
  }
  // One extent per row run of the region, offsets in the flattened array.
  std::vector<ByteExtent> extents;
  extents.reserve(rows);
  std::vector<std::uint64_t> cursor = lower;
  const std::size_t rank = array_shape.size();
  std::uint64_t total = element_bytes;
  for (const std::uint64_t e : array_shape) total *= e;
  for (std::uint64_t row = 0; row < rows; ++row) {
    std::uint64_t offset = 0;
    for (std::size_t d = 0; d < rank; ++d) offset = offset * array_shape[d] + cursor[d];
    extents.push_back({offset * element_bytes,
                       extent[rank - 1] * element_bytes});
    // Odometer over dims [0, rank-1).
    for (std::size_t d = rank - 1; d-- > 0;) {
      if (++cursor[d] < lower[d] + extent[d]) break;
      cursor[d] = lower[d];
    }
  }
  return FromExtents(std::move(extents), total);
}

std::uint64_t Datatype::size() const noexcept { return payload_->size; }
std::uint64_t Datatype::extent() const noexcept { return payload_->extent; }
const std::vector<ByteExtent>& Datatype::extents() const noexcept {
  return payload_->extents;
}

}  // namespace dpfs::client
