#include "client/file_system.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <chrono>
#include <thread>

#include "common/metrics.h"
#include "common/strings.h"
#include "layout/replication.h"

namespace dpfs::client {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
// client.* aggregates every executed plan across FileSystem instances;
// combined_requests counts §4.2 combination actually firing (>1 brick per
// wire request).
struct ClientMetricsT {
  metrics::Counter& requests = metrics::GetCounter("client.requests");
  metrics::Counter& combined_requests =
      metrics::GetCounter("client.combined_requests");
  metrics::Counter& transfer_bytes =
      metrics::GetCounter("client.transfer_bytes");
  metrics::Counter& useful_bytes = metrics::GetCounter("client.useful_bytes");
  metrics::Counter& retries = metrics::GetCounter("client.retries");
  metrics::Counter& busy_retries = metrics::GetCounter("client.busy_retries");
  metrics::Counter& failed_accesses =
      metrics::GetCounter("client.failed_accesses");
  // List-I/O (IoOptions::list_io) wire requests, a subset of
  // client.requests (docs/NONCONTIGUOUS_IO.md).
  metrics::Counter& list_requests = metrics::GetCounter("client.list_requests");
  // Metadata (file-record) cache effectiveness, aggregated across
  // instances; per-instance numbers stay on metadata_cache_stats().
  metrics::Counter& metadata_cache_hits =
      metrics::GetCounter("client.metadata_cache.hits");
  metrics::Counter& metadata_cache_misses =
      metrics::GetCounter("client.metadata_cache.misses");
  // Replication extension (docs/REPLICATION.md): reads served by a replica
  // rank > 0, and write-side replica requests that failed while the brick
  // stayed durable on another rank.
  metrics::Counter& failover_reads =
      metrics::GetCounter("client.failover_reads");
  metrics::Counter& replica_write_failures =
      metrics::GetCounter("client.replica_write_failures");
};
ClientMetricsT& ClientMetrics() {
  static ClientMetricsT m;
  return m;
}
}  // namespace

Result<std::shared_ptr<FileSystem>> FileSystem::Connect(
    std::shared_ptr<metadb::Database> db) {
  DPFS_ASSIGN_OR_RETURN(std::unique_ptr<MetadataManager> metadata,
                        MetadataManager::Attach(std::move(db)));
  return std::shared_ptr<FileSystem>(new FileSystem(std::move(metadata)));
}

Result<std::shared_ptr<FileSystem>> FileSystem::Connect(
    std::shared_ptr<metadb::ShardedDatabase> db) {
  DPFS_ASSIGN_OR_RETURN(std::unique_ptr<MetadataManager> metadata,
                        MetadataManager::Attach(std::move(db)));
  return std::shared_ptr<FileSystem>(new FileSystem(std::move(metadata)));
}

Result<std::shared_ptr<FileSystem>> FileSystem::ConnectRemote(
    const net::Endpoint& endpoint, RemoteMetadataOptions options) {
  DPFS_ASSIGN_OR_RETURN(std::unique_ptr<RemoteMetadataManager> metadata,
                        RemoteMetadataManager::Connect(endpoint, options));
  return std::shared_ptr<FileSystem>(new FileSystem(std::move(metadata)));
}

// ---------------------------------------------------------------------------
// Create / Open / Remove

namespace {

Result<FileMeta> BuildMeta(const std::string& path,
                           const CreateOptions& options) {
  FileMeta meta;
  DPFS_ASSIGN_OR_RETURN(meta.path, NormalizePath(path));
  meta.owner = options.owner;
  meta.permission = options.permission;
  meta.level = options.level;
  meta.element_size = options.element_size;
  meta.array_shape = options.array_shape;

  switch (options.level) {
    case layout::FileLevel::kLinear:
      meta.brick_bytes = options.brick_bytes;
      meta.size_bytes =
          options.array_shape.empty()
              ? options.total_bytes
              : layout::NumElements(options.array_shape) * options.element_size;
      if (meta.size_bytes == 0) {
        return InvalidArgumentError(
            "linear file needs a size: set total_bytes or array_shape");
      }
      break;
    case layout::FileLevel::kMultidim:
      if (options.array_shape.empty() || options.brick_shape.empty()) {
        return InvalidArgumentError(
            "multidim file needs array_shape and brick_shape hints");
      }
      meta.brick_shape = options.brick_shape;
      meta.size_bytes =
          layout::NumElements(options.array_shape) * options.element_size;
      break;
    case layout::FileLevel::kArray: {
      if (options.array_shape.empty() || !options.pattern.has_value()) {
        return InvalidArgumentError(
            "array file needs array_shape and pattern hints");
      }
      meta.pattern = options.pattern;
      if (!options.chunk_grid.empty()) {
        meta.chunk_grid = options.chunk_grid;
      } else {
        if (options.num_chunks == 0) {
          return InvalidArgumentError(
              "array file needs chunk_grid or num_chunks hints");
        }
        meta.chunk_grid =
            layout::ProcessGrid::Auto(options.num_chunks,
                                      options.pattern->num_block_dims())
                .grid;
      }
      meta.size_bytes =
          layout::NumElements(options.array_shape) * options.element_size;
      break;
    }
  }
  return meta;
}

}  // namespace

Result<FileHandle> FileSystem::Create(const std::string& path,
                                      const CreateOptions& options) {
  DPFS_ASSIGN_OR_RETURN(FileMeta meta, BuildMeta(path, options));
  DPFS_ASSIGN_OR_RETURN(layout::BrickMap map, meta.MakeBrickMap());

  DPFS_ASSIGN_OR_RETURN(std::vector<ServerInfo> servers,
                        metadata_->ListServers());
  if (servers.empty()) {
    return UnavailableError("no I/O servers registered in DPFS_SERVER");
  }
  if (options.suggested_io_nodes > 0 &&
      options.suggested_io_nodes < servers.size()) {
    servers.resize(options.suggested_io_nodes);
  }

  std::vector<std::uint32_t> performance;
  std::vector<std::uint64_t> capacity_bricks;
  std::vector<std::string> names;
  performance.reserve(servers.size());
  for (const ServerInfo& server : servers) {
    performance.push_back(server.performance);
    names.push_back(server.name);
    // How many full brick slots the server's advertised capacity can hold
    // (only consulted by the capacity-aware policy).
    capacity_bricks.push_back(map.brick_bytes() == 0
                                  ? 0
                                  : server.capacity_bytes / map.brick_bytes());
  }
  // Replication (extension, docs/REPLICATION.md): R > 1 stacks R - 1
  // replica ranks on top of the primary. R = 1 keeps the original code
  // path, so unreplicated layouts stay byte-identical to the paper's.
  std::vector<layout::BrickDistribution> ranks;
  if (options.replication > 1) {
    layout::ReplicationSpec spec;
    spec.factor = options.replication;
    spec.domains = options.failure_domains;
    DPFS_ASSIGN_OR_RETURN(
        const layout::ReplicatedDistribution replicated,
        layout::ReplicatedDistribution::Create(options.placement,
                                               map.num_bricks(), performance,
                                               spec, capacity_bricks));
    ranks = replicated.ranks();
  } else {
    DPFS_ASSIGN_OR_RETURN(
        layout::BrickDistribution distribution,
        layout::BrickDistribution::Create(options.placement, map.num_bricks(),
                                          performance, capacity_bricks));
    ranks.push_back(std::move(distribution));
  }
  std::vector<layout::BrickDistribution> replicas(ranks.begin() + 1,
                                                  ranks.end());
  DPFS_RETURN_IF_ERROR(metadata_->CreateFile(meta, names, ranks[0], replicas));

  FileHandle handle;
  handle.record.meta = std::move(meta);
  handle.record.servers = std::move(servers);
  handle.record.distribution = std::move(ranks[0]);
  handle.record.replicas = std::move(replicas);
  handle.map = std::move(map);
  if (remote_ == nullptr) {
    MutexLock lock(cache_mu_);
    record_cache_[handle.record.meta.path] = handle.record;
  }
  return handle;
}

Result<FileHandle> FileSystem::Open(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (remote_ != nullptr) {
    // Remote mode: the RemoteMetadataManager owns record caching (TTL +
    // invalidate-on-own-write) so staleness is bounded even when *other*
    // processes mutate the namespace; a second instance-level cache here
    // would reintroduce the unbounded window.
    DPFS_ASSIGN_OR_RETURN(FileRecord record, metadata_->LookupFile(normalized));
    DPFS_ASSIGN_OR_RETURN(layout::BrickMap map, record.meta.MakeBrickMap());
    FileHandle handle;
    handle.record = std::move(record);
    handle.map = std::move(map);
    return handle;
  }
  {
    MutexLock lock(cache_mu_);
    const auto it = record_cache_.find(normalized);
    if (it != record_cache_.end()) {
      ++cache_hits_;
      ClientMetrics().metadata_cache_hits.Add();
      FileHandle handle;
      handle.record = it->second;
      DPFS_ASSIGN_OR_RETURN(handle.map, handle.record.meta.MakeBrickMap());
      return handle;
    }
    ++cache_misses_;
    ClientMetrics().metadata_cache_misses.Add();
  }
  DPFS_ASSIGN_OR_RETURN(FileRecord record, metadata_->LookupFile(normalized));
  DPFS_ASSIGN_OR_RETURN(layout::BrickMap map, record.meta.MakeBrickMap());
  FileHandle handle;
  handle.record = std::move(record);
  handle.map = std::move(map);
  {
    MutexLock lock(cache_mu_);
    record_cache_[normalized] = handle.record;
  }
  return handle;
}

Status FileSystem::Remove(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const FileRecord record, metadata_->LookupFile(path));
  for (const ServerInfo& server : record.servers) {
    DPFS_ASSIGN_OR_RETURN(PooledConnection conn,
                          pool_.Acquire(server.endpoint));
    // Every replica rank stores its own subfile name (rank 0 is the plain
    // path); a server that never received a brick write for a rank has no
    // subfile for it, which is fine.
    for (std::uint32_t rank = 0; rank < record.replication(); ++rank) {
      const Status deleted =
          conn->Delete(layout::ReplicaSubfileName(record.meta.path, rank));
      if (!deleted.ok() && deleted.code() != StatusCode::kNotFound) {
        conn.Poison();
        return deleted.WithContext("delete subfile on " + server.name);
      }
    }
  }
  InvalidateMetadataCache(record.meta.path);
  if (brick_cache_ != nullptr) brick_cache_->InvalidateFile(record.meta.path);
  return metadata_->DeleteFile(path);
}

void FileSystem::EnableBrickCache(std::uint64_t capacity_bytes) {
  brick_cache_ = std::make_unique<BrickCache>(capacity_bytes);
}

Result<std::string> FileSystem::AdviseLevel(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const FileRecord record, metadata_->LookupFile(path));
  DPFS_ASSIGN_OR_RETURN(const MetadataManager::AccessSummary summary,
                        metadata_->SummarizeAccess(path));
  const FileMeta& meta = record.meta;
  if (summary.accesses == 0) {
    return std::string(
        "no access observations yet — enable SetAccessLogging(true) and run "
        "the workload");
  }
  const double efficiency = summary.efficiency();
  const double requests_per_access =
      static_cast<double>(summary.requests) /
      static_cast<double>(summary.accesses);
  char stats[160];
  std::snprintf(stats, sizeof(stats),
                "%llu accesses, %.1f requests/access, %.1f%% wire efficiency: ",
                static_cast<unsigned long long>(summary.accesses),
                requests_per_access, efficiency * 100.0);
  std::string advice(stats);

  if (meta.level == layout::FileLevel::kLinear && efficiency < 0.5 &&
      !meta.array_shape.empty()) {
    advice +=
        "whole-brick reads discard most of each linear brick (the Fig 5 "
        "pathology) — recreate at level=multidim with a square tile, or use "
        "sieve reads (IoOptions::whole_brick_reads = false)";
  } else if (meta.level != layout::FileLevel::kArray &&
             requests_per_access >
                 4.0 * static_cast<double>(record.servers.size()) &&
             efficiency > 0.9) {
    advice +=
        "access is efficient but chatty — enable request combination, or if "
        "each client reads one HPF chunk, recreate at level=array";
  } else if (efficiency > 0.9 &&
             requests_per_access <=
                 static_cast<double>(record.servers.size())) {
    advice += "the current level=";
    advice += layout::FileLevelName(meta.level);
    advice += " fits this workload";
  } else {
    advice +=
        "mixed pattern — consider a multidim tile sized to the smaller "
        "access dimension (see bench/ablation_brick_size)";
  }
  return advice;
}

Status FileSystem::RemoveDirectory(const std::string& path, bool recursive) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (recursive) {
    DPFS_ASSIGN_OR_RETURN(const MetadataManager::Listing listing,
                          metadata_->ListDirectory(normalized));
    const std::string prefix = normalized == "/" ? "" : normalized;
    for (const std::string& file : listing.files) {
      DPFS_RETURN_IF_ERROR(Remove(prefix + "/" + file));
    }
    for (const std::string& dir : listing.directories) {
      DPFS_RETURN_IF_ERROR(RemoveDirectory(prefix + "/" + dir, true));
    }
  }
  return metadata_->RemoveDirectory(normalized, /*recursive=*/false);
}

Status FileSystem::Rename(const std::string& from, const std::string& to) {
  DPFS_ASSIGN_OR_RETURN(const std::string src, NormalizePath(from));
  DPFS_ASSIGN_OR_RETURN(const std::string dst, NormalizePath(to));
  DPFS_ASSIGN_OR_RETURN(const FileRecord record, metadata_->LookupFile(src));
  // Validate the metadata preconditions before touching any subfile, so a
  // doomed rename does not strand data under the new name.
  DPFS_ASSIGN_OR_RETURN(const bool dst_exists, metadata_->FileExists(dst));
  if (dst_exists) return AlreadyExistsError("file '" + dst + "' exists");

  // (server, replica rank) pairs renamed so far, for rollback on failure.
  std::vector<std::pair<const ServerInfo*, std::uint32_t>> renamed;
  Status failure;
  for (const ServerInfo& server : record.servers) {
    DPFS_ASSIGN_OR_RETURN(PooledConnection conn,
                          pool_.Acquire(server.endpoint));
    for (std::uint32_t rank = 0; rank < record.replication(); ++rank) {
      const Status status =
          conn->Rename(layout::ReplicaSubfileName(src, rank),
                       layout::ReplicaSubfileName(dst, rank));
      // A server that never received a brick write has no subfile to rename.
      if (status.ok()) {
        renamed.push_back({&server, rank});
      } else if (status.code() != StatusCode::kNotFound) {
        conn.Poison();
        failure = status.WithContext("rename subfile on " + server.name);
        break;
      }
    }
    if (!failure.ok()) break;
  }
  if (failure.ok()) {
    failure = metadata_->RenameFile(src, dst);
  }
  if (!failure.ok()) {
    // Best-effort rollback of the subfiles already renamed.
    for (const auto& [server, rank] : renamed) {
      Result<PooledConnection> conn = pool_.Acquire(server->endpoint);
      if (conn.ok()) {
        PooledConnection pooled = std::move(conn).value();
        // dpfs:unchecked(best-effort rollback: the original failure is
        // what the caller must see, not a secondary undo error)
        (void)pooled->Rename(layout::ReplicaSubfileName(dst, rank),
                             layout::ReplicaSubfileName(src, rank));
      }
    }
    return failure;
  }
  InvalidateMetadataCache(src);
  InvalidateMetadataCache(dst);
  if (brick_cache_ != nullptr) {
    brick_cache_->InvalidateFile(src);
    brick_cache_->InvalidateFile(dst);
  }
  return Status::Ok();
}

Result<FileSystem::FsckReport> FileSystem::Fsck(bool repair) {
  if (embedded_ == nullptr) {
    return UnimplementedError(
        "fsck reads DPFS_FILE_ATTR directly and needs embedded metadata; "
        "run it on the host that owns the metadata database");
  }
  FsckReport report;
  // Expected file set from DPFS_FILE_ATTR, unioned across every shard.
  metadb::ShardedDatabase& db = embedded_->sharded_db();
  std::set<std::string> expected;
  for (std::size_t shard = 0; shard < db.num_shards(); ++shard) {
    DPFS_ASSIGN_OR_RETURN(
        const metadb::ResultSet attr,
        db.shard(shard).Execute("SELECT filename FROM DPFS_FILE_ATTR"));
    for (std::size_t row = 0; row < attr.size(); ++row) {
      DPFS_ASSIGN_OR_RETURN(std::string name, attr.GetText(row, "filename"));
      expected.insert(std::move(name));
    }
  }
  report.files_checked = expected.size();
  // Replicated files (docs/REPLICATION.md) also legitimately own per-rank
  // subfiles named "<path>#r<rank>"; learn the ranks from the distribution
  // rows so replicas are not misreported as orphans.
  for (std::size_t shard = 0; shard < db.num_shards(); ++shard) {
    DPFS_ASSIGN_OR_RETURN(
        const metadb::ResultSet dist,
        db.shard(shard).Execute(
            "SELECT filename, replica FROM DPFS_FILE_DISTRIBUTION"));
    for (std::size_t row = 0; row < dist.size(); ++row) {
      DPFS_ASSIGN_OR_RETURN(const std::int64_t rank,
                            dist.GetInt(row, "replica"));
      if (rank <= 0) continue;
      DPFS_ASSIGN_OR_RETURN(std::string name, dist.GetText(row, "filename"));
      expected.insert(layout::ReplicaSubfileName(
          name, static_cast<std::uint32_t>(rank)));
    }
  }

  DPFS_ASSIGN_OR_RETURN(const std::vector<ServerInfo> servers,
                        metadata_->ListServers());
  for (const ServerInfo& server : servers) {
    Result<PooledConnection> conn = pool_.Acquire(server.endpoint);
    if (!conn.ok()) {
      report.unreachable_servers.push_back(server.name);
      continue;
    }
    PooledConnection pooled = std::move(conn).value();
    const Result<std::vector<net::SubfileInfo>> listing = pooled->List();
    if (!listing.ok()) {
      pooled.Poison();
      report.unreachable_servers.push_back(server.name);
      continue;
    }
    ++report.servers_checked;
    for (const net::SubfileInfo& info : listing.value()) {
      if (expected.contains(info.name)) continue;
      report.orphans.push_back({server.name, info.name, info.size});
      if (repair) {
        const Status deleted = pooled->Delete(info.name);
        if (deleted.ok()) ++report.repaired;
      }
    }
  }
  return report;
}

void FileSystem::InvalidateMetadataCache() {
  if (remote_ != nullptr) {
    remote_->InvalidateCache();
    return;
  }
  MutexLock lock(cache_mu_);
  record_cache_.clear();
}

void FileSystem::InvalidateMetadataCache(const std::string& path) {
  if (remote_ != nullptr) {
    remote_->InvalidateCache(path);
    return;
  }
  const Result<std::string> normalized = NormalizePath(path);
  if (!normalized.ok()) return;
  MutexLock lock(cache_mu_);
  record_cache_.erase(normalized.value());
}

FileSystem::CacheStats FileSystem::metadata_cache_stats() const {
  if (remote_ != nullptr) {
    const RemoteMetadataManager::CacheStats stats = remote_->cache_stats();
    return CacheStats{stats.hits, stats.misses};
  }
  MutexLock lock(cache_mu_);
  return CacheStats{cache_hits_, cache_misses_};
}

// ---------------------------------------------------------------------------
// Plan execution

ThreadPool& FileSystem::DispatchPool() {
  MutexLock lock(dispatch_mu_);
  if (dispatch_pool_ == nullptr) {
    const unsigned hw = std::thread::hardware_concurrency();
    dispatch_pool_ = std::make_unique<ThreadPool>(std::max(4u, hw / 2));
  }
  return *dispatch_pool_;
}

struct FileSystem::RetryTally {
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> busy_retries{0};
  std::atomic<std::uint64_t> backoff_ms{0};
  std::atomic<std::uint64_t> failover_reads{0};
};

Status FileSystem::ExecutePlan(const FileHandle& handle,
                               const layout::ClientPlan& plan_in,
                               const RunsByBrick& runs, ByteSpan write_data,
                               MutableByteSpan read_buffer,
                               const IoOptions& options, IoReport* report) {
  const bool is_write = plan_in.direction == layout::IoDirection::kWrite;
  const std::uint32_t factor = handle.record.replication();

  // Replication (docs/REPLICATION.md): a write plan against a replicated
  // file fans every request out to all ranks before dispatch, so the
  // executor below sees replica requests as ordinary requests. Reads keep
  // the rank-0 plan and fail over per request.
  const bool replicated_write = is_write && factor > 1 && !plan_in.list_io;
  layout::ClientPlan expanded;
  if (replicated_write) {
    std::vector<layout::BrickDistribution> ranks;
    ranks.reserve(factor);
    ranks.push_back(handle.record.distribution);
    for (const layout::BrickDistribution& replica : handle.record.replicas) {
      ranks.push_back(replica);
    }
    DPFS_ASSIGN_OR_RETURN(const layout::ReplicatedDistribution dist,
                          layout::ReplicatedDistribution::FromRanks(
                              std::move(ranks)));
    DPFS_ASSIGN_OR_RETURN(expanded, layout::ExpandWritePlan(plan_in, dist));
  }
  const layout::ClientPlan& plan = replicated_write ? expanded : plan_in;

  for (const layout::ServerRequest& request : plan.requests) {
    if (request.server >= handle.record.servers.size()) {
      return InternalError("plan references unknown server index");
    }
  }

  RetryTally tally;
  const auto run_one = [&](const layout::ServerRequest& request) -> Status {
    if (!is_write && factor > 1 && request.list_extents.empty()) {
      return ExecuteReadWithFailover(handle, request, runs, read_buffer,
                                     options, tally);
    }
    return ExecuteOneRequest(handle, request, runs, write_data, read_buffer,
                             is_write, options, tally);
  };

  // Per-request outcomes: a replicated write keeps dispatching after a
  // failure (a lost replica is degradation, not data loss), so every
  // request's status is needed for the durability accounting below.
  std::vector<Status> statuses(plan.requests.size());
  Status status;
  if (options.parallel_dispatch && plan.requests.size() > 1) {
    // Dispatch threads write disjoint runs of the shared buffer, so no
    // synchronization is needed beyond collecting the per-slot statuses.
    ParallelFor(DispatchPool(), plan.requests.size(), [&](std::size_t i) {
      statuses[i] = run_one(plan.requests[i]);
    });
    for (const Status& request_status : statuses) {
      if (!request_status.ok()) {
        status = request_status;
        break;
      }
    }
  } else {
    for (std::size_t i = 0; i < plan.requests.size(); ++i) {
      statuses[i] = run_one(plan.requests[i]);
      if (!statuses[i].ok()) {
        if (status.ok()) status = statuses[i];
        if (!replicated_write) break;
      }
    }
  }

  std::size_t replica_write_failures = 0;
  if (replicated_write && !status.ok()) {
    // A brick's bytes are lost only when *every* rank's write of it
    // failed; otherwise the access succeeded degraded. Failed servers are
    // marked suspect so subsequent reads prefer the surviving copies.
    std::map<layout::BrickId, std::uint32_t> failed_copies;
    Status lost;
    for (std::size_t i = 0; i < plan.requests.size(); ++i) {
      if (statuses[i].ok()) continue;
      ++replica_write_failures;
      MarkSuspect(
          handle.record.servers[plan.requests[i].server].endpoint.ToString());
      for (const layout::BrickRequest& brick : plan.requests[i].bricks) {
        if (++failed_copies[brick.brick] == factor) lost = statuses[i];
      }
    }
    status = lost;
  }

  // Retry counters are reported even for failed accesses, so callers can
  // observe retry exhaustion, not just recovery.
  const std::uint64_t retries =
      tally.retries.load(std::memory_order_relaxed);
  const std::uint64_t busy_retries =
      tally.busy_retries.load(std::memory_order_relaxed);
  const std::uint64_t failover_reads =
      tally.failover_reads.load(std::memory_order_relaxed);
  ClientMetrics().retries.Add(retries);
  ClientMetrics().busy_retries.Add(busy_retries);
  ClientMetrics().failover_reads.Add(failover_reads);
  ClientMetrics().replica_write_failures.Add(replica_write_failures);
  if (report != nullptr) {
    report->retries += static_cast<std::size_t>(retries);
    report->busy_retries += static_cast<std::size_t>(busy_retries);
    report->backoff_ms += tally.backoff_ms.load(std::memory_order_relaxed);
    report->failover_reads += static_cast<std::size_t>(failover_reads);
    report->replica_write_failures += replica_write_failures;
  }
  if (!status.ok()) {
    ClientMetrics().failed_accesses.Add();
    return status;
  }

  std::size_t combined = 0;
  for (const layout::ServerRequest& request : plan.requests) {
    if (request.bricks.size() > 1) ++combined;
  }
  ClientMetrics().requests.Add(plan.num_requests());
  ClientMetrics().combined_requests.Add(combined);
  ClientMetrics().transfer_bytes.Add(plan.transfer_bytes());
  ClientMetrics().useful_bytes.Add(plan.useful_bytes());
  if (plan.list_io) ClientMetrics().list_requests.Add(plan.num_requests());
  if (report != nullptr) {
    report->requests += plan.num_requests();
    report->combined_requests += combined;
    report->transfer_bytes += plan.transfer_bytes();
    report->useful_bytes += plan.useful_bytes();
  }
  if (access_logging_.load(std::memory_order_relaxed)) {
    // dpfs:unchecked(access logging is advisory telemetry; a failed log
    // write must not fail the I/O it describes)
    (void)metadata_->LogAccess(handle.record.meta.path, is_write,
                               plan.num_requests(), plan.transfer_bytes(),
                               plan.useful_bytes());
  }
  return Status::Ok();
}

Status FileSystem::ExecuteOneRequest(const FileHandle& handle,
                                     const layout::ServerRequest& request,
                                     const RunsByBrick& runs,
                                     ByteSpan write_data,
                                     MutableByteSpan read_buffer,
                                     bool is_write, const IoOptions& options,
                                     RetryTally& tally) {
  Status last;
  const int attempts = 1 + std::max(0, options.max_retries);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      tally.retries.fetch_add(1, std::memory_order_relaxed);
      if (last.code() == StatusCode::kResourceExhausted) {
        tally.busy_retries.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t backoff = 2ull * static_cast<std::uint64_t>(attempt);
      tally.backoff_ms.fetch_add(backoff, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    last = TryOneRequest(handle, request, runs, write_data, read_buffer,
                         is_write, options);
    if (last.ok()) return last;
    // Only transient conditions are retried: an overloaded server (§4.2's
    // "try again later") or a connection that could not be established.
    if (last.code() != StatusCode::kResourceExhausted &&
        last.code() != StatusCode::kUnavailable) {
      return last;
    }
  }
  return last;
}

Status FileSystem::TryOneRequest(const FileHandle& handle,
                                 const layout::ServerRequest& request,
                                 const RunsByBrick& runs, ByteSpan write_data,
                                 MutableByteSpan read_buffer, bool is_write,
                                 const IoOptions& options) {
  const FileRecord& record = handle.record;
  const std::uint64_t slot_bytes = handle.map.brick_bytes();
  // Replica rank selection (docs/REPLICATION.md): the request's rank picks
  // both the slot layout and the on-server subfile name. Rank 0 is the
  // primary — plain path, primary distribution — so unreplicated requests
  // are byte-identical to the pre-replication wire traffic.
  const layout::BrickDistribution& dist =
      record.rank_distribution(request.replica);
  const std::string subfile =
      layout::ReplicaSubfileName(record.meta.path, request.replica);
  {
    const ServerInfo& server = record.servers[request.server];
    DPFS_ASSIGN_OR_RETURN(PooledConnection conn,
                          pool_.Acquire(server.endpoint));

    if (!request.list_extents.empty()) {
      // List I/O (docs/NONCONTIGUOUS_IO.md): the plan already carries the
      // wire extents (subfile offset/length plus the packed-buffer offset),
      // so each batch ships them verbatim as one list_read/list_write —
      // `runs` is not consulted on this path.
      const std::vector<layout::ListExtent>& extents = request.list_extents;
      std::size_t begin = 0;
      while (begin < extents.size()) {
        std::size_t end = begin;
        std::uint64_t batch_bytes = 0;
        while (end < extents.size() &&
               (end == begin || batch_bytes + extents[end].length <=
                                    options.max_request_bytes)) {
          batch_bytes += extents[end].length;
          ++end;
        }
        std::vector<net::ReadFragment> wire;
        wire.reserve(end - begin);
        for (std::size_t i = begin; i < end; ++i) {
          wire.push_back({extents[i].subfile_offset, extents[i].length});
        }
        if (is_write) {
          // Gather the batched payload in extent order; its size must equal
          // the extent sum (the server rejects mismatches at decode time).
          Bytes payload;
          payload.reserve(static_cast<std::size_t>(batch_bytes));
          for (std::size_t i = begin; i < end; ++i) {
            payload.insert(
                payload.end(),
                write_data.begin() +
                    static_cast<std::ptrdiff_t>(extents[i].buffer_offset),
                write_data.begin() +
                    static_cast<std::ptrdiff_t>(extents[i].buffer_offset +
                                                extents[i].length));
          }
          const Status written = conn->ListWrite(subfile, wire,
                                                 std::move(payload),
                                                 options.sync);
          if (!written.ok()) {
            conn.Poison();
            return written.WithContext("list write to " + server.name);
          }
        } else {
          const Result<Bytes> data = conn->ListRead(subfile, wire);
          if (!data.ok()) {
            conn.Poison();
            return data.status().WithContext("list read from " + server.name);
          }
          // The reply is the batch's extent bytes concatenated in order.
          std::uint64_t cursor = 0;
          for (std::size_t i = begin; i < end; ++i) {
            std::copy_n(
                data.value().begin() + static_cast<std::ptrdiff_t>(cursor),
                extents[i].length,
                read_buffer.begin() +
                    static_cast<std::ptrdiff_t>(extents[i].buffer_offset));
            cursor += extents[i].length;
          }
        }
        begin = end;
      }
      if (is_write && brick_cache_ != nullptr) {
        for (const layout::BrickRequest& brick : request.bricks) {
          brick_cache_->Invalidate(record.meta.path, brick.brick);
        }
      }
    } else if (is_write) {
      // Adjacent runs within a brick coalesce into one fragment: a fully
      // covered brick travels as a single contiguous write even though its
      // bytes are gathered from many places in the user's buffer.
      std::vector<net::WriteFragment> fragments;
      for (const layout::BrickRequest& brick : request.bricks) {
        const std::uint64_t slot =
            dist.slot_for(brick.brick) * slot_bytes;
        const auto it = runs.find(brick.brick);
        if (it == runs.end()) continue;
        for (const layout::BrickRun& run : it->second) {
          const bool extends =
              !fragments.empty() &&
              fragments.back().offset + fragments.back().data.size() ==
                  slot + run.offset_in_brick;
          if (!extends) {
            net::WriteFragment fragment;
            fragment.offset = slot + run.offset_in_brick;
            fragments.push_back(std::move(fragment));
          }
          fragments.back().data.insert(
              fragments.back().data.end(),
              write_data.begin() +
                  static_cast<std::ptrdiff_t>(run.buffer_offset),
              write_data.begin() +
                  static_cast<std::ptrdiff_t>(run.buffer_offset + run.length));
        }
      }
      // Ship in batches bounded by max_request_bytes (one frame each).
      std::size_t begin = 0;
      while (begin < fragments.size()) {
        std::size_t end = begin;
        std::uint64_t batch_bytes = 0;
        std::vector<net::WriteFragment> batch;
        while (end < fragments.size() &&
               (end == begin || batch_bytes + fragments[end].data.size() <=
                                    options.max_request_bytes)) {
          batch_bytes += fragments[end].data.size();
          batch.push_back(std::move(fragments[end]));
          ++end;
        }
        const Status written =
            conn->Write(subfile, std::move(batch), options.sync);
        if (!written.ok()) {
          conn.Poison();
          return written.WithContext("write to " + server.name);
        }
        begin = end;
      }
      if (brick_cache_ != nullptr) {
        for (const layout::BrickRequest& brick : request.bricks) {
          brick_cache_->Invalidate(record.meta.path, brick.brick);
        }
      }
    } else if (options.whole_brick_reads) {
      // Reads move whole bricks (§3.2 semantics); the useful runs are
      // scattered out of the returned brick images. Cached bricks are
      // served locally and skipped on the wire.
      const auto scatter = [&](const layout::BrickRequest& brick,
                               ByteSpan image) {
        const auto it = runs.find(brick.brick);
        if (it == runs.end()) return;
        for (const layout::BrickRun& run : it->second) {
          std::copy_n(
              image.begin() + static_cast<std::ptrdiff_t>(run.offset_in_brick),
              run.length,
              read_buffer.begin() +
                  static_cast<std::ptrdiff_t>(run.buffer_offset));
        }
      };

      std::vector<net::ReadFragment> fragments;
      std::vector<const layout::BrickRequest*> fetched;
      for (const layout::BrickRequest& brick : request.bricks) {
        if (brick_cache_ != nullptr) {
          if (const std::optional<Bytes> image =
                  brick_cache_->Get(record.meta.path, brick.brick)) {
            scatter(brick, *image);
            continue;
          }
        }
        net::ReadFragment fragment;
        fragment.offset = dist.slot_for(brick.brick) * slot_bytes;
        fragment.length = handle.map.brick_fetch_bytes(brick.brick);
        fragments.push_back(fragment);
        fetched.push_back(&brick);
      }
      std::size_t begin = 0;
      while (begin < fragments.size()) {
        std::size_t end = begin;
        std::uint64_t batch_bytes = 0;
        while (end < fragments.size() &&
               (end == begin || batch_bytes + fragments[end].length <=
                                    options.max_request_bytes)) {
          batch_bytes += fragments[end].length;
          ++end;
        }
        const std::vector<net::ReadFragment> batch(
            fragments.begin() + static_cast<std::ptrdiff_t>(begin),
            fragments.begin() + static_cast<std::ptrdiff_t>(end));
        const Result<Bytes> data = conn->Read(subfile, batch);
        if (!data.ok()) {
          conn.Poison();
          return data.status().WithContext("read from " + server.name);
        }
        std::uint64_t image_base = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const ByteSpan image =
              ByteSpan(data.value()).subspan(image_base, fragments[i].length);
          scatter(*fetched[i], image);
          if (brick_cache_ != nullptr) {
            brick_cache_->Put(record.meta.path, fetched[i]->brick,
                              Bytes(image.begin(), image.end()));
          }
          image_base += fragments[i].length;
        }
        begin = end;
      }
    } else {
      // Sieve reads (extension): fetch only the useful runs, coalescing
      // adjacent runs into single fragments; the reply byte stream equals
      // the runs' bytes in order, so scattering walks a cursor.
      std::vector<net::ReadFragment> fragments;
      std::vector<const layout::BrickRun*> fragment_runs;
      std::vector<std::size_t> fragment_first_run;  // index into fragment_runs
      for (const layout::BrickRequest& brick : request.bricks) {
        const std::uint64_t slot =
            dist.slot_for(brick.brick) * slot_bytes;
        const auto it = runs.find(brick.brick);
        if (it == runs.end()) continue;
        for (const layout::BrickRun& run : it->second) {
          const bool extends =
              !fragments.empty() &&
              fragments.back().offset + fragments.back().length ==
                  slot + run.offset_in_brick;
          if (extends) {
            fragments.back().length += run.length;
          } else {
            fragments.push_back({slot + run.offset_in_brick, run.length});
            fragment_first_run.push_back(fragment_runs.size());
          }
          fragment_runs.push_back(&run);
        }
      }
      std::size_t begin = 0;
      while (begin < fragments.size()) {
        std::size_t end = begin;
        std::uint64_t batch_bytes = 0;
        while (end < fragments.size() &&
               (end == begin || batch_bytes + fragments[end].length <=
                                    options.max_request_bytes)) {
          batch_bytes += fragments[end].length;
          ++end;
        }
        const std::vector<net::ReadFragment> batch(
            fragments.begin() + static_cast<std::ptrdiff_t>(begin),
            fragments.begin() + static_cast<std::ptrdiff_t>(end));
        const Result<Bytes> data = conn->Read(subfile, batch);
        if (!data.ok()) {
          conn.Poison();
          return data.status().WithContext("read from " + server.name);
        }
        // The reply equals the batch's runs' bytes in order.
        const std::size_t run_begin = fragment_first_run[begin];
        const std::size_t run_end = end < fragments.size()
                                        ? fragment_first_run[end]
                                        : fragment_runs.size();
        std::uint64_t cursor = 0;
        for (std::size_t r = run_begin; r < run_end; ++r) {
          const layout::BrickRun* run = fragment_runs[r];
          std::copy_n(
              data.value().begin() + static_cast<std::ptrdiff_t>(cursor),
              run->length,
              read_buffer.begin() +
                  static_cast<std::ptrdiff_t>(run->buffer_offset));
          cursor += run->length;
        }
        begin = end;
      }
    }
  }
  return Status::Ok();
}

namespace {
// How long a server that failed a request is deprioritized (not excluded)
// by read failover.
constexpr std::chrono::seconds kSuspectTtl{5};
}  // namespace

void FileSystem::MarkSuspect(const std::string& endpoint_key) {
  MutexLock lock(suspect_mu_);
  suspects_[endpoint_key] = std::chrono::steady_clock::now() + kSuspectTtl;
}

bool FileSystem::IsSuspect(const std::string& endpoint_key) {
  MutexLock lock(suspect_mu_);
  const auto it = suspects_.find(endpoint_key);
  if (it == suspects_.end()) return false;
  if (std::chrono::steady_clock::now() >= it->second) {
    suspects_.erase(it);
    return false;
  }
  return true;
}

Status FileSystem::ExecuteReadWithFailover(const FileHandle& handle,
                                           const layout::ServerRequest& request,
                                           const RunsByBrick& runs,
                                           MutableByteSpan read_buffer,
                                           const IoOptions& options,
                                           RetryTally& tally) {
  const FileRecord& record = handle.record;
  const std::uint32_t factor = record.replication();
  // Materialize every rank's request(s) up front, then order the ranks so
  // that ranks whose servers are all healthy go first; rank order breaks
  // ties, so the primary is preferred when nothing is suspect.
  struct RankPlan {
    std::uint32_t rank = 0;
    bool suspect = false;
    std::vector<layout::ServerRequest> requests;
  };
  std::vector<RankPlan> ranks;
  ranks.reserve(factor);
  for (std::uint32_t r = 0; r < factor; ++r) {
    RankPlan rank_plan;
    rank_plan.rank = r;
    if (r == 0) {
      rank_plan.requests.push_back(request);
    } else {
      DPFS_ASSIGN_OR_RETURN(
          rank_plan.requests,
          layout::RemapRequestToRank(request, record.rank_distribution(r), r));
    }
    for (const layout::ServerRequest& sub : rank_plan.requests) {
      if (sub.server >= record.servers.size()) {
        return InternalError("replica rank references unknown server index");
      }
      if (IsSuspect(record.servers[sub.server].endpoint.ToString())) {
        rank_plan.suspect = true;
      }
    }
    ranks.push_back(std::move(rank_plan));
  }
  std::stable_sort(ranks.begin(), ranks.end(),
                   [](const RankPlan& a, const RankPlan& b) {
                     return !a.suspect && b.suspect;
                   });

  Status last;
  for (const RankPlan& rank_plan : ranks) {
    Status rank_status;
    for (const layout::ServerRequest& sub : rank_plan.requests) {
      rank_status = ExecuteOneRequest(handle, sub, runs, /*write_data=*/{},
                                      read_buffer, /*is_write=*/false, options,
                                      tally);
      if (!rank_status.ok()) break;
    }
    if (rank_status.ok()) {
      if (rank_plan.rank != 0) {
        tally.failover_reads.fetch_add(1, std::memory_order_relaxed);
      }
      return Status::Ok();
    }
    last = rank_status;
    // Only transient failures fail over — a malformed request would fail
    // identically on every rank, so surface it immediately.
    if (rank_status.code() != StatusCode::kUnavailable &&
        rank_status.code() != StatusCode::kResourceExhausted) {
      return rank_status;
    }
    for (const layout::ServerRequest& sub : rank_plan.requests) {
      MarkSuspect(record.servers[sub.server].endpoint.ToString());
    }
  }
  return last;
}

// ---------------------------------------------------------------------------
// Region access

namespace {

layout::PlanOptions ToPlanOptions(const IoOptions& options,
                                  layout::IoDirection direction) {
  layout::PlanOptions plan_options;
  plan_options.direction = direction;
  plan_options.combine = options.combine;
  plan_options.rotate_start = options.rotate_start;
  plan_options.whole_brick_reads = options.whole_brick_reads;
  plan_options.parallel_dispatch = options.parallel_dispatch;
  return plan_options;
}

}  // namespace

Status FileSystem::WriteRegion(FileHandle& handle,
                               const layout::Region& region, ByteSpan data,
                               const IoOptions& options, IoReport* report) {
  const std::uint64_t expected =
      region.num_elements() * handle.map.element_size();
  if (data.size() != expected) {
    return InvalidArgumentError(
        "buffer is " + std::to_string(data.size()) + " bytes, region needs " +
        std::to_string(expected));
  }
  DPFS_ASSIGN_OR_RETURN(
      const layout::ClientPlan plan,
      layout::PlanRegionAccess(handle.map, handle.record.distribution,
                               handle.client_id, region,
                               ToPlanOptions(options,
                                             layout::IoDirection::kWrite)));
  RunsByBrick runs;
  DPFS_RETURN_IF_ERROR(handle.map.ForEachRun(
      region,
      [&runs](const layout::BrickRun& run) { runs[run.brick].push_back(run); }));
  return ExecutePlan(handle, plan, runs, data, {}, options, report);
}

Status FileSystem::ReadRegion(FileHandle& handle, const layout::Region& region,
                              MutableByteSpan out, const IoOptions& options,
                              IoReport* report) {
  const std::uint64_t expected =
      region.num_elements() * handle.map.element_size();
  if (out.size() != expected) {
    return InvalidArgumentError(
        "buffer is " + std::to_string(out.size()) + " bytes, region needs " +
        std::to_string(expected));
  }
  DPFS_ASSIGN_OR_RETURN(
      const layout::ClientPlan plan,
      layout::PlanRegionAccess(handle.map, handle.record.distribution,
                               handle.client_id, region,
                               ToPlanOptions(options,
                                             layout::IoDirection::kRead)));
  RunsByBrick runs;
  DPFS_RETURN_IF_ERROR(handle.map.ForEachRun(
      region,
      [&runs](const layout::BrickRun& run) { runs[run.brick].push_back(run); }));
  return ExecutePlan(handle, plan, runs, {}, out, options, report);
}

// ---------------------------------------------------------------------------
// Byte access

Status FileSystem::WriteBytes(FileHandle& handle, std::uint64_t offset,
                              ByteSpan data, const IoOptions& options,
                              IoReport* report) {
  if (offset + data.size() > handle.map.total_bytes()) {
    return OutOfRangeError("write past end of file (capacity " +
                           std::to_string(handle.map.total_bytes()) + ")");
  }
  DPFS_ASSIGN_OR_RETURN(
      const layout::ClientPlan plan,
      layout::PlanByteAccess(handle.map, handle.record.distribution,
                             handle.client_id, offset, data.size(),
                             ToPlanOptions(options,
                                           layout::IoDirection::kWrite)));
  RunsByBrick runs;
  DPFS_RETURN_IF_ERROR(handle.map.ForEachByteRun(
      offset, data.size(),
      [&runs](const layout::BrickRun& run) { runs[run.brick].push_back(run); }));
  return ExecutePlan(handle, plan, runs, data, {}, options, report);
}

Status FileSystem::ReadBytes(FileHandle& handle, std::uint64_t offset,
                             MutableByteSpan out, const IoOptions& options,
                             IoReport* report) {
  if (offset + out.size() > handle.map.total_bytes()) {
    return OutOfRangeError("read past end of file (size " +
                           std::to_string(handle.map.total_bytes()) + ")");
  }
  DPFS_ASSIGN_OR_RETURN(
      const layout::ClientPlan plan,
      layout::PlanByteAccess(handle.map, handle.record.distribution,
                             handle.client_id, offset, out.size(),
                             ToPlanOptions(options,
                                           layout::IoDirection::kRead)));
  RunsByBrick runs;
  DPFS_RETURN_IF_ERROR(handle.map.ForEachByteRun(
      offset, out.size(),
      [&runs](const layout::BrickRun& run) { runs[run.brick].push_back(run); }));
  return ExecutePlan(handle, plan, runs, {}, out, options, report);
}

// ---------------------------------------------------------------------------
// Derived-datatype access

Status FileSystem::WriteType(FileHandle& handle, std::uint64_t base_offset,
                             const Datatype& type, ByteSpan data,
                             const IoOptions& options, IoReport* report) {
  if (data.size() != type.size()) {
    return InvalidArgumentError("buffer size " + std::to_string(data.size()) +
                                " != datatype payload " +
                                std::to_string(type.size()));
  }
  if (base_offset + type.extent() > handle.map.total_bytes()) {
    return OutOfRangeError("datatype write past end of file");
  }
  // List I/O does not compose with replication (a list plan's extents are
  // absolute rank-0 subfile offsets); replicated files fall back to the
  // per-extent path, which fans out and fails over per docs/REPLICATION.md.
  if (options.list_io && handle.record.replication() == 1) {
    return ExecuteListAccess(handle, base_offset, type.extents(), data, {},
                             layout::IoDirection::kWrite, options, report);
  }
  // One access per coalesced extent keeps the semantics simple; the extents
  // are already merged, so this matches what MPI-IO data sieving would issue
  // without read-modify-write.
  std::uint64_t buffer_cursor = 0;
  for (const ByteExtent& extent : type.extents()) {
    DPFS_RETURN_IF_ERROR(WriteBytes(
        handle, base_offset + extent.offset,
        data.subspan(buffer_cursor, extent.length), options, report));
    buffer_cursor += extent.length;
  }
  return Status::Ok();
}

Status FileSystem::ReadType(FileHandle& handle, std::uint64_t base_offset,
                            const Datatype& type, MutableByteSpan out,
                            const IoOptions& options, IoReport* report) {
  if (out.size() != type.size()) {
    return InvalidArgumentError("buffer size " + std::to_string(out.size()) +
                                " != datatype payload " +
                                std::to_string(type.size()));
  }
  if (base_offset + type.extent() > handle.map.total_bytes()) {
    return OutOfRangeError("datatype read past end of file");
  }
  // Same replication fallback as WriteType: per-extent accesses get read
  // failover, list plans would not.
  if (options.list_io && handle.record.replication() == 1) {
    return ExecuteListAccess(handle, base_offset, type.extents(), {}, out,
                             layout::IoDirection::kRead, options, report);
  }
  std::uint64_t buffer_cursor = 0;
  for (const ByteExtent& extent : type.extents()) {
    DPFS_RETURN_IF_ERROR(ReadBytes(
        handle, base_offset + extent.offset,
        out.subspan(buffer_cursor, extent.length), options, report));
    buffer_cursor += extent.length;
  }
  return Status::Ok();
}

Status FileSystem::ExecuteListAccess(const FileHandle& handle,
                                     std::uint64_t base_offset,
                                     const std::vector<ByteExtent>& extents,
                                     ByteSpan write_data,
                                     MutableByteSpan read_buffer,
                                     layout::IoDirection direction,
                                     const IoOptions& options,
                                     IoReport* report) {
  std::vector<layout::FileExtent> file_extents;
  file_extents.reserve(extents.size());
  for (const ByteExtent& extent : extents) {
    file_extents.push_back(
        layout::FileExtent{base_offset + extent.offset, extent.length});
  }
  DPFS_ASSIGN_OR_RETURN(
      const layout::ClientPlan plan,
      layout::PlanListAccess(handle.map, handle.record.distribution,
                             handle.client_id, file_extents,
                             ToPlanOptions(options, direction)));
  return ExecutePlan(handle, plan, RunsByBrick{}, write_data, read_buffer,
                     options, report);
}

}  // namespace dpfs::client
