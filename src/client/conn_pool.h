// Thread-safe pool of server connections shared by all file handles of one
// FileSystem. Each "compute node" thread checks a connection out per
// request burst and returns it, so concurrent clients get independent TCP
// streams (the paper's servers handle each connection in its own thread).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/connection.h"

namespace dpfs::client {

class ConnectionPool;

/// RAII lease on a pooled connection; returns it on destruction. The
/// connection is dropped (not returned) if marked poisoned — e.g. after a
/// transport error left the stream mid-message.
class PooledConnection {
 public:
  PooledConnection(PooledConnection&&) noexcept = default;
  PooledConnection& operator=(PooledConnection&&) noexcept = delete;
  ~PooledConnection();

  net::ServerConnection& operator*() noexcept { return *conn_; }
  net::ServerConnection* operator->() noexcept { return conn_.get(); }

  /// Marks the connection as unusable; it will not be pooled again.
  void Poison() noexcept { poisoned_ = true; }

 private:
  friend class ConnectionPool;
  PooledConnection(ConnectionPool* pool,
                   std::unique_ptr<net::ServerConnection> conn)
      : pool_(pool), conn_(std::move(conn)) {}

  ConnectionPool* pool_;
  std::unique_ptr<net::ServerConnection> conn_;
  bool poisoned_ = false;
};

/// Staleness probe + redial shared by the pool and by long-held
/// connections (RemoteMetadataManager): drops `conn` when its peer has
/// closed — counting a `conn_pool.redials` — then dials a fresh connection
/// if none is held. Nothing has been sent on a probed-stale stream, so the
/// drop-and-redial is always safe, unlike a reply-path failure whose
/// fate-unknown outcome must surface to the caller.
Status EnsureFreshConnection(std::optional<net::ServerConnection>& conn,
                             const net::Endpoint& endpoint);

class ConnectionPool {
 public:
  ConnectionPool() = default;
  ConnectionPool(const ConnectionPool&) = delete;
  ConnectionPool& operator=(const ConnectionPool&) = delete;

  /// Checks out an idle connection to `endpoint`, dialing a new one if none
  /// is pooled.
  Result<PooledConnection> Acquire(const net::Endpoint& endpoint);

  /// Drops all idle connections.
  void Clear();

  [[nodiscard]] std::size_t idle_count() const;

 private:
  friend class PooledConnection;
  void Release(std::unique_ptr<net::ServerConnection> conn);

  mutable Mutex mu_;
  std::map<std::pair<std::string, std::uint16_t>,
           std::vector<std::unique_ptr<net::ServerConnection>>>
      idle_ DPFS_GUARDED_BY(mu_);
};

}  // namespace dpfs::client
