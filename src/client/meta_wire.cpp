#include "client/meta_wire.h"

#include "layout/placement.h"

namespace dpfs::client::meta_wire {

namespace {

void EncodeShape(const layout::Shape& shape, BinaryWriter& writer) {
  writer.WriteU32(static_cast<std::uint32_t>(shape.size()));
  for (const std::uint64_t dim : shape) writer.WriteU64(dim);
}

Result<layout::Shape> DecodeShape(BinaryReader& reader) {
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  layout::Shape shape;
  shape.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DPFS_ASSIGN_OR_RETURN(const std::uint64_t dim, reader.ReadU64());
    shape.push_back(dim);
  }
  return shape;
}

void EncodeStrings(const std::vector<std::string>& strings,
                   BinaryWriter& writer) {
  writer.WriteU32(static_cast<std::uint32_t>(strings.size()));
  for (const std::string& s : strings) writer.WriteString(s);
}

Result<std::vector<std::string>> DecodeStrings(BinaryReader& reader) {
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  std::vector<std::string> strings;
  strings.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DPFS_ASSIGN_OR_RETURN(std::string s, reader.ReadString());
    strings.push_back(std::move(s));
  }
  return strings;
}

}  // namespace

void EncodeServerInfo(const ServerInfo& info, BinaryWriter& writer) {
  writer.WriteString(info.name);
  writer.WriteString(info.endpoint.host);
  writer.WriteU16(info.endpoint.port);
  writer.WriteU64(info.capacity_bytes);
  writer.WriteU32(info.performance);
}

Result<ServerInfo> DecodeServerInfo(BinaryReader& reader) {
  ServerInfo info;
  DPFS_ASSIGN_OR_RETURN(info.name, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(info.endpoint.host, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(info.endpoint.port, reader.ReadU16());
  DPFS_ASSIGN_OR_RETURN(info.capacity_bytes, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(info.performance, reader.ReadU32());
  return info;
}

void EncodeFileMeta(const FileMeta& meta, BinaryWriter& writer) {
  writer.WriteString(meta.path);
  writer.WriteString(meta.owner);
  writer.WriteU32(meta.permission);
  writer.WriteU64(meta.size_bytes);
  writer.WriteU8(static_cast<std::uint8_t>(meta.level));
  writer.WriteU64(meta.element_size);
  EncodeShape(meta.array_shape, writer);
  writer.WriteU64(meta.brick_bytes);
  EncodeShape(meta.brick_shape, writer);
  writer.WriteBool(meta.pattern.has_value());
  if (meta.pattern.has_value()) writer.WriteString(meta.pattern->ToString());
  EncodeShape(meta.chunk_grid, writer);
}

Result<FileMeta> DecodeFileMeta(BinaryReader& reader) {
  FileMeta meta;
  DPFS_ASSIGN_OR_RETURN(meta.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(meta.owner, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(meta.permission, reader.ReadU32());
  DPFS_ASSIGN_OR_RETURN(meta.size_bytes, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(const std::uint8_t level, reader.ReadU8());
  if (level > static_cast<std::uint8_t>(layout::FileLevel::kArray)) {
    return ProtocolError("bad file level " + std::to_string(level));
  }
  meta.level = static_cast<layout::FileLevel>(level);
  DPFS_ASSIGN_OR_RETURN(meta.element_size, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(meta.array_shape, DecodeShape(reader));
  DPFS_ASSIGN_OR_RETURN(meta.brick_bytes, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(meta.brick_shape, DecodeShape(reader));
  DPFS_ASSIGN_OR_RETURN(const bool has_pattern, reader.ReadBool());
  if (has_pattern) {
    DPFS_ASSIGN_OR_RETURN(const std::string text, reader.ReadString());
    DPFS_ASSIGN_OR_RETURN(meta.pattern, layout::HpfPattern::Parse(text));
  }
  DPFS_ASSIGN_OR_RETURN(meta.chunk_grid, DecodeShape(reader));
  return meta;
}

void ServerRequest::Encode(BinaryWriter& writer) const {
  EncodeServerInfo(server, writer);
}

Result<ServerRequest> ServerRequest::Decode(BinaryReader& reader) {
  ServerRequest request;
  DPFS_ASSIGN_OR_RETURN(request.server, DecodeServerInfo(reader));
  return request;
}

void NameRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(name);
}

Result<NameRequest> NameRequest::Decode(BinaryReader& reader) {
  NameRequest request;
  DPFS_ASSIGN_OR_RETURN(request.name, reader.ReadString());
  return request;
}

void PathRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
}

Result<PathRequest> PathRequest::Decode(BinaryReader& reader) {
  PathRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  return request;
}

void CreateFileRequest::Encode(BinaryWriter& writer) const {
  EncodeFileMeta(meta, writer);
  EncodeStrings(server_names, writer);
  EncodeStrings(bricklists, writer);
  // Trailing replica section, present only for replicated files so R=1
  // frames stay byte-identical to the pre-replication format.
  if (!replica_bricklists.empty()) {
    writer.WriteU32(static_cast<std::uint32_t>(replica_bricklists.size()));
    for (const std::vector<std::string>& rank : replica_bricklists) {
      EncodeStrings(rank, writer);
    }
  }
}

Result<CreateFileRequest> CreateFileRequest::Decode(BinaryReader& reader) {
  CreateFileRequest request;
  DPFS_ASSIGN_OR_RETURN(request.meta, DecodeFileMeta(reader));
  DPFS_ASSIGN_OR_RETURN(request.server_names, DecodeStrings(reader));
  DPFS_ASSIGN_OR_RETURN(request.bricklists, DecodeStrings(reader));
  if (request.server_names.size() != request.bricklists.size()) {
    return ProtocolError("create_file: " +
                         std::to_string(request.server_names.size()) +
                         " server names vs " +
                         std::to_string(request.bricklists.size()) +
                         " bricklists");
  }
  if (!reader.AtEnd()) {
    DPFS_ASSIGN_OR_RETURN(const std::uint32_t ranks, reader.ReadU32());
    request.replica_bricklists.reserve(ranks);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      DPFS_ASSIGN_OR_RETURN(std::vector<std::string> rank,
                            DecodeStrings(reader));
      if (rank.size() != request.server_names.size()) {
        return ProtocolError(
            "create_file: replica rank bricklist count mismatch");
      }
      request.replica_bricklists.push_back(std::move(rank));
    }
  }
  return request;
}

void UpdateSizeRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
  writer.WriteU64(size_bytes);
}

Result<UpdateSizeRequest> UpdateSizeRequest::Decode(BinaryReader& reader) {
  UpdateSizeRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.size_bytes, reader.ReadU64());
  return request;
}

void SetPermissionRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
  writer.WriteU32(permission);
}

Result<SetPermissionRequest> SetPermissionRequest::Decode(
    BinaryReader& reader) {
  SetPermissionRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.permission, reader.ReadU32());
  return request;
}

void SetOwnerRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
  writer.WriteString(owner);
}

Result<SetOwnerRequest> SetOwnerRequest::Decode(BinaryReader& reader) {
  SetOwnerRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.owner, reader.ReadString());
  return request;
}

void RenameRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(from);
  writer.WriteString(to);
}

Result<RenameRequest> RenameRequest::Decode(BinaryReader& reader) {
  RenameRequest request;
  DPFS_ASSIGN_OR_RETURN(request.from, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.to, reader.ReadString());
  return request;
}

void LogAccessRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
  writer.WriteBool(is_write);
  writer.WriteU64(requests);
  writer.WriteU64(transfer_bytes);
  writer.WriteU64(useful_bytes);
}

Result<LogAccessRequest> LogAccessRequest::Decode(BinaryReader& reader) {
  LogAccessRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.is_write, reader.ReadBool());
  DPFS_ASSIGN_OR_RETURN(request.requests, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(request.transfer_bytes, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(request.useful_bytes, reader.ReadU64());
  return request;
}

void RemoveDirectoryRequest::Encode(BinaryWriter& writer) const {
  writer.WriteString(path);
  writer.WriteBool(recursive);
}

Result<RemoveDirectoryRequest> RemoveDirectoryRequest::Decode(
    BinaryReader& reader) {
  RemoveDirectoryRequest request;
  DPFS_ASSIGN_OR_RETURN(request.path, reader.ReadString());
  DPFS_ASSIGN_OR_RETURN(request.recursive, reader.ReadBool());
  return request;
}

void ServerListReply::Encode(BinaryWriter& writer) const {
  writer.WriteU32(static_cast<std::uint32_t>(servers.size()));
  for (const ServerInfo& server : servers) EncodeServerInfo(server, writer);
}

Result<ServerListReply> ServerListReply::Decode(BinaryReader& reader) {
  ServerListReply reply;
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t count, reader.ReadU32());
  reply.servers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    DPFS_ASSIGN_OR_RETURN(ServerInfo server, DecodeServerInfo(reader));
    reply.servers.push_back(std::move(server));
  }
  return reply;
}

void FileRecordReply::Encode(BinaryWriter& writer) const {
  EncodeFileMeta(record.meta, writer);
  writer.WriteU32(static_cast<std::uint32_t>(record.servers.size()));
  for (const ServerInfo& server : record.servers) {
    EncodeServerInfo(server, writer);
  }
  writer.WriteU64(record.distribution.num_bricks());
  const std::uint32_t num_servers = record.distribution.num_servers();
  writer.WriteU32(num_servers);
  for (std::uint32_t i = 0; i < num_servers; ++i) {
    writer.WriteString(layout::BrickDistribution::EncodeBrickList(
        record.distribution.bricks_on(i)));
  }
  // Trailing replica section (ranks 1..R-1), omitted for R=1 records so
  // their frames stay byte-identical to the pre-replication format.
  if (!record.replicas.empty()) {
    writer.WriteU32(static_cast<std::uint32_t>(record.replicas.size()));
    for (const layout::BrickDistribution& rank : record.replicas) {
      for (std::uint32_t i = 0; i < rank.num_servers(); ++i) {
        writer.WriteString(
            layout::BrickDistribution::EncodeBrickList(rank.bricks_on(i)));
      }
    }
  }
}

Result<FileRecordReply> FileRecordReply::Decode(BinaryReader& reader) {
  FileRecordReply reply;
  DPFS_ASSIGN_OR_RETURN(reply.record.meta, DecodeFileMeta(reader));
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t server_count, reader.ReadU32());
  reply.record.servers.reserve(server_count);
  for (std::uint32_t i = 0; i < server_count; ++i) {
    DPFS_ASSIGN_OR_RETURN(ServerInfo server, DecodeServerInfo(reader));
    reply.record.servers.push_back(std::move(server));
  }
  DPFS_ASSIGN_OR_RETURN(const std::uint64_t num_bricks, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(const std::uint32_t list_count, reader.ReadU32());
  std::vector<std::vector<layout::BrickId>> bricklists;
  bricklists.reserve(list_count);
  for (std::uint32_t i = 0; i < list_count; ++i) {
    DPFS_ASSIGN_OR_RETURN(const std::string text, reader.ReadString());
    DPFS_ASSIGN_OR_RETURN(std::vector<layout::BrickId> bricks,
                          layout::BrickDistribution::DecodeBrickList(text));
    bricklists.push_back(std::move(bricks));
  }
  DPFS_ASSIGN_OR_RETURN(
      reply.record.distribution,
      layout::BrickDistribution::FromBrickLists(num_bricks,
                                                std::move(bricklists)));
  if (!reader.AtEnd()) {
    DPFS_ASSIGN_OR_RETURN(const std::uint32_t ranks, reader.ReadU32());
    for (std::uint32_t r = 0; r < ranks; ++r) {
      std::vector<std::vector<layout::BrickId>> rank_lists;
      rank_lists.reserve(list_count);
      for (std::uint32_t i = 0; i < list_count; ++i) {
        DPFS_ASSIGN_OR_RETURN(const std::string text, reader.ReadString());
        DPFS_ASSIGN_OR_RETURN(
            std::vector<layout::BrickId> bricks,
            layout::BrickDistribution::DecodeBrickList(text));
        rank_lists.push_back(std::move(bricks));
      }
      DPFS_ASSIGN_OR_RETURN(layout::BrickDistribution rank_dist,
                            layout::BrickDistribution::FromBrickLists(
                                num_bricks, std::move(rank_lists)));
      reply.record.replicas.push_back(std::move(rank_dist));
    }
  }
  return reply;
}

void BoolReply::Encode(BinaryWriter& writer) const { writer.WriteBool(value); }

Result<BoolReply> BoolReply::Decode(BinaryReader& reader) {
  BoolReply reply;
  DPFS_ASSIGN_OR_RETURN(reply.value, reader.ReadBool());
  return reply;
}

void AccessSummaryReply::Encode(BinaryWriter& writer) const {
  writer.WriteU64(summary.accesses);
  writer.WriteU64(summary.requests);
  writer.WriteU64(summary.transfer_bytes);
  writer.WriteU64(summary.useful_bytes);
}

Result<AccessSummaryReply> AccessSummaryReply::Decode(BinaryReader& reader) {
  AccessSummaryReply reply;
  DPFS_ASSIGN_OR_RETURN(reply.summary.accesses, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(reply.summary.requests, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(reply.summary.transfer_bytes, reader.ReadU64());
  DPFS_ASSIGN_OR_RETURN(reply.summary.useful_bytes, reader.ReadU64());
  return reply;
}

void ListingReply::Encode(BinaryWriter& writer) const {
  EncodeStrings(listing.directories, writer);
  EncodeStrings(listing.files, writer);
}

Result<ListingReply> ListingReply::Decode(BinaryReader& reader) {
  ListingReply reply;
  DPFS_ASSIGN_OR_RETURN(reply.listing.directories, DecodeStrings(reader));
  DPFS_ASSIGN_OR_RETURN(reply.listing.files, DecodeStrings(reader));
  return reply;
}

}  // namespace dpfs::client::meta_wire
