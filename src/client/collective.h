// Collective I/O on DPFS — the MPI-IO-flavoured interface the paper names
// as future work (§10: "use DPFS as a low level system to service a high
// level interface such as MPI-IO").
//
// A CollectiveFile is shared by `num_ranks` cooperating threads. Each rank
// declares a *view* (its region of the global array, à la
// MPI_File_set_view) and then calls WriteAll/ReadAll collectively: the call
// performs the rank's transfer with the rank's own request schedule
// (client_id = rank, so §4.2 rotation staggers the ranks) and blocks until
// every rank has completed the phase — any rank's failure is reported to
// all of them.
#pragma once

#include <barrier>
#include <memory>
#include <optional>
#include <vector>

#include "client/file_system.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dpfs::client {

class CollectiveFile {
 public:
  /// Opens an existing file for `num_ranks` cooperating threads.
  static Result<std::unique_ptr<CollectiveFile>> Open(
      std::shared_ptr<FileSystem> fs, const std::string& path,
      std::uint32_t num_ranks);

  /// Creates the file first (the hint structure decides its level), then
  /// opens it collectively.
  static Result<std::unique_ptr<CollectiveFile>> Create(
      std::shared_ptr<FileSystem> fs, const std::string& path,
      const CreateOptions& options, std::uint32_t num_ranks);

  /// Declares rank's view. Must be called (by any thread) before that rank's
  /// first collective transfer. Views may overlap for reads; overlapping
  /// write views make the overlap's final content unspecified (as in
  /// MPI-IO).
  Status SetView(std::uint32_t rank, const layout::Region& region);

  /// Convenience: views from an HPF pattern — rank r gets chunk r.
  Status SetHpfViews(const layout::HpfPattern& pattern,
                     const layout::ProcessGrid& grid);

  /// Collective transfer of rank's whole view. Every rank must call;
  /// returns after all ranks finish, with this rank's own error, or
  /// kAborted("collective peer failed") if only a peer failed.
  Status WriteAll(std::uint32_t rank, ByteSpan data,
                  const IoOptions& options = {});
  Status ReadAll(std::uint32_t rank, MutableByteSpan out,
                 const IoOptions& options = {});

  [[nodiscard]] std::uint32_t num_ranks() const noexcept {
    return static_cast<std::uint32_t>(handles_.size());
  }
  [[nodiscard]] const FileMeta& meta() const noexcept {
    return handles_.front().meta();
  }
  /// The view a rank declared (if any).
  [[nodiscard]] std::optional<layout::Region> view(std::uint32_t rank) const;

  /// Aggregate transfer statistics across all ranks and phases.
  [[nodiscard]] IoReport report() const;

 private:
  CollectiveFile(std::shared_ptr<FileSystem> fs,
                 std::vector<FileHandle> handles);

  Status Transfer(std::uint32_t rank, ByteSpan write_data,
                  MutableByteSpan read_buffer, const IoOptions& options);

  std::shared_ptr<FileSystem> fs_;
  std::vector<FileHandle> handles_;  // one per rank, client_id = rank
  std::barrier<> barrier_;

  // Per-rank failure flag for the current phase. Each rank writes only its
  // own slot before the phase barrier and reads the others only between the
  // two barriers, so the barrier's happens-before edges order all accesses
  // (deliberately not mu_-guarded; the barrier is the synchronization).
  std::vector<std::uint8_t> phase_failed_;

  mutable Mutex mu_;
  std::vector<std::optional<layout::Region>> views_ DPFS_GUARDED_BY(mu_);
  IoReport total_report_ DPFS_GUARDED_BY(mu_);
};

}  // namespace dpfs::client
