// Body codecs for the metadata-service opcodes (net::MessageType::kMeta*).
//
// The envelope ([u8 type][body] / [u8 status][message][body]) belongs to
// net/messages.h; the bodies are defined here, in the client layer, because
// they are expressed in terms of FileMeta/FileRecord/ServerInfo — types net
// must not depend on (net sits below layout in the build graph).
//
// Every struct round-trips: Decode(Encode(x)) == x field-for-field. The
// round-trip suite (tests/client/meta_wire_test.cpp) pins that, and the
// wire layout itself is documented in docs/WIRE_PROTOCOL.md ("Metadata
// protocol"). Bricklists travel in the DPFS_FILE_DISTRIBUTION text encoding
// ("0,2,6,...") so the wire and the table speak the same dialect.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "client/metadata_service.h"
#include "common/bytes.h"
#include "common/status.h"

namespace dpfs::client::meta_wire {

// --- field codecs shared by the message structs ---------------------------
void EncodeServerInfo(const ServerInfo& info, BinaryWriter& writer);
Result<ServerInfo> DecodeServerInfo(BinaryReader& reader);

void EncodeFileMeta(const FileMeta& meta, BinaryWriter& writer);
Result<FileMeta> DecodeFileMeta(BinaryReader& reader);

// --- requests -------------------------------------------------------------

/// kMetaRegisterServer.
struct ServerRequest {
  ServerInfo server;

  void Encode(BinaryWriter& writer) const;
  static Result<ServerRequest> Decode(BinaryReader& reader);
};

/// kMetaUnregisterServer / kMetaLookupServer (body: the server name).
struct NameRequest {
  std::string name;

  void Encode(BinaryWriter& writer) const;
  static Result<NameRequest> Decode(BinaryReader& reader);
};

/// kMetaLookupFile / kMetaDeleteFile / kMetaFileExists /
/// kMetaSummarizeAccess / kMetaClearAccessLog / kMetaMakeDirectory /
/// kMetaDirectoryExists / kMetaListDirectory (body: the DPFS path).
struct PathRequest {
  std::string path;

  void Encode(BinaryWriter& writer) const;
  static Result<PathRequest> Decode(BinaryReader& reader);
};

/// kMetaCreateFile. `bricklists[i]` belongs to `server_names[i]`, in the
/// table's text encoding. `replica_bricklists[r-1][i]` is replica rank r's
/// bricklist for server i (replication extension); it travels as a
/// trailing section that unreplicated requests omit entirely, so their
/// frames stay byte-identical to the pre-replication wire format.
struct CreateFileRequest {
  FileMeta meta;
  std::vector<std::string> server_names;
  std::vector<std::string> bricklists;
  std::vector<std::vector<std::string>> replica_bricklists;

  void Encode(BinaryWriter& writer) const;
  static Result<CreateFileRequest> Decode(BinaryReader& reader);
};

/// kMetaUpdateSize.
struct UpdateSizeRequest {
  std::string path;
  std::uint64_t size_bytes = 0;

  void Encode(BinaryWriter& writer) const;
  static Result<UpdateSizeRequest> Decode(BinaryReader& reader);
};

/// kMetaSetPermission.
struct SetPermissionRequest {
  std::string path;
  std::uint32_t permission = 0;

  void Encode(BinaryWriter& writer) const;
  static Result<SetPermissionRequest> Decode(BinaryReader& reader);
};

/// kMetaSetOwner.
struct SetOwnerRequest {
  std::string path;
  std::string owner;

  void Encode(BinaryWriter& writer) const;
  static Result<SetOwnerRequest> Decode(BinaryReader& reader);
};

/// kMetaRenameFile.
struct RenameRequest {
  std::string from;
  std::string to;

  void Encode(BinaryWriter& writer) const;
  static Result<RenameRequest> Decode(BinaryReader& reader);
};

/// kMetaLogAccess.
struct LogAccessRequest {
  std::string path;
  bool is_write = false;
  std::uint64_t requests = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t useful_bytes = 0;

  void Encode(BinaryWriter& writer) const;
  static Result<LogAccessRequest> Decode(BinaryReader& reader);
};

/// kMetaRemoveDirectory.
struct RemoveDirectoryRequest {
  std::string path;
  bool recursive = false;

  void Encode(BinaryWriter& writer) const;
  static Result<RemoveDirectoryRequest> Decode(BinaryReader& reader);
};

// --- replies --------------------------------------------------------------

/// kMetaListServers reply.
struct ServerListReply {
  std::vector<ServerInfo> servers;

  void Encode(BinaryWriter& writer) const;
  static Result<ServerListReply> Decode(BinaryReader& reader);
};

/// kMetaLookupFile reply. `num_bricks` travels explicitly so the decoder
/// rebuilds the exact BrickDistribution without re-deriving the brick map.
/// Replica ranks (record.replicas) ride in a trailing section that
/// unreplicated records omit, keeping their frames byte-identical to the
/// pre-replication format.
struct FileRecordReply {
  FileRecord record;

  void Encode(BinaryWriter& writer) const;
  static Result<FileRecordReply> Decode(BinaryReader& reader);
};

/// kMetaFileExists / kMetaDirectoryExists reply.
struct BoolReply {
  bool value = false;

  void Encode(BinaryWriter& writer) const;
  static Result<BoolReply> Decode(BinaryReader& reader);
};

/// kMetaSummarizeAccess reply.
struct AccessSummaryReply {
  MetadataService::AccessSummary summary;

  void Encode(BinaryWriter& writer) const;
  static Result<AccessSummaryReply> Decode(BinaryReader& reader);
};

/// kMetaListDirectory reply.
struct ListingReply {
  MetadataService::Listing listing;

  void Encode(BinaryWriter& writer) const;
  static Result<ListingReply> Decode(BinaryReader& reader);
};

}  // namespace dpfs::client::meta_wire
