// MetadataService over the wire: speaks the kMeta* opcodes to a dpfs-metad
// process (extension: `metadata_endpoint`; docs/METADATA_SCHEMA.md "Remote
// access").
//
// Connection model: one lazily-(re)dialed connection, serialized by a
// mutex — metadata operations are small and infrequent next to data I/O,
// so one in-flight RPC at a time keeps the failure model simple. A
// transport failure abandons the connection and surfaces kUnavailable;
// the next call redials, so a restarted metad is picked up transparently.
//
// Caching: LookupFile results are cached with a TTL and invalidated by this
// manager's own mutations (create/delete/rename/resize/chmod/chown). Writes
// from *other* clients surface after at most cache_ttl — the staleness
// window the conformance suite pins. Hits and misses feed the same
// client.metadata_cache.hits/misses instruments the embedded cache uses.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "client/metadata_service.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "net/connection.h"

namespace dpfs::client {

struct RemoteMetadataOptions {
  /// How long a cached LookupFile record may serve before re-fetching.
  /// Zero disables the cache: every lookup goes to the wire (strongest
  /// consistency, highest latency).
  std::chrono::milliseconds cache_ttl{250};
};

class RemoteMetadataManager final : public MetadataService {
 public:
  /// Dials the metadata server and verifies it answers a ping — connect
  /// failures surface here, not on the first namespace operation.
  static Result<std::unique_ptr<RemoteMetadataManager>> Connect(
      const net::Endpoint& endpoint, RemoteMetadataOptions options = {});

  Status RegisterServer(const ServerInfo& server) override;
  Status UnregisterServer(const std::string& name) override;
  Result<std::vector<ServerInfo>> ListServers() override;
  Result<ServerInfo> LookupServer(const std::string& name) override;

  Status CreateFile(
      const FileMeta& meta, const std::vector<std::string>& server_names,
      const layout::BrickDistribution& distribution,
      const std::vector<layout::BrickDistribution>& replicas = {}) override;
  Result<FileRecord> LookupFile(const std::string& path) override;
  Status UpdateFileSize(const std::string& path,
                        std::uint64_t size_bytes) override;
  Status SetPermission(const std::string& path,
                       std::uint32_t permission) override;
  Status SetOwner(const std::string& path, const std::string& owner) override;
  Status DeleteFile(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;

  Status LogAccess(const std::string& path, bool is_write,
                   std::uint64_t requests, std::uint64_t transfer_bytes,
                   std::uint64_t useful_bytes) override;
  Result<AccessSummary> SummarizeAccess(const std::string& path) override;
  Status ClearAccessLog(const std::string& path) override;

  Status MakeDirectory(const std::string& path) override;
  Status RemoveDirectory(const std::string& path, bool recursive) override;
  Result<bool> DirectoryExists(const std::string& path) override;
  Result<Listing> ListDirectory(const std::string& path) override;

  /// The metad process's full metrics text snapshot (kMetrics passthrough).
  Result<std::string> FetchMetrics();
  Status Ping();

  /// Drops every cached file record (or one path's) — for out-of-band
  /// events, mirroring FileSystem::InvalidateMetadataCache.
  void InvalidateCache();
  void InvalidateCache(const std::string& path);

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] CacheStats cache_stats() const;

  [[nodiscard]] const net::Endpoint& endpoint() const noexcept {
    return endpoint_;
  }

 private:
  RemoteMetadataManager(net::Endpoint endpoint, RemoteMetadataOptions options)
      : endpoint_(std::move(endpoint)), options_(options) {}

  /// One RPC: (re)dials if needed, sends, receives. On a transport-level
  /// failure the connection is abandoned so the next call redials.
  Result<Bytes> Call(net::MessageType type, ByteSpan body);

  net::Endpoint endpoint_;
  RemoteMetadataOptions options_;

  Mutex conn_mu_;
  std::optional<net::ServerConnection> conn_ DPFS_GUARDED_BY(conn_mu_);

  struct CacheEntry {
    FileRecord record;
    std::chrono::steady_clock::time_point expires;
  };
  mutable Mutex cache_mu_;
  std::map<std::string, CacheEntry> cache_ DPFS_GUARDED_BY(cache_mu_);
  std::uint64_t cache_hits_ DPFS_GUARDED_BY(cache_mu_) = 0;
  std::uint64_t cache_misses_ DPFS_GUARDED_BY(cache_mu_) = 0;
};

}  // namespace dpfs::client
