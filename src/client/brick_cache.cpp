#include "client/brick_cache.h"

#include "common/metrics.h"

namespace dpfs::client {

namespace {
// Global-registry instruments, resolved once (docs/OBSERVABILITY.md).
struct CacheMetrics {
  metrics::Counter& hits = metrics::GetCounter("brick_cache.hits");
  metrics::Counter& misses = metrics::GetCounter("brick_cache.misses");
  metrics::Counter& insertions = metrics::GetCounter("brick_cache.insertions");
  metrics::Counter& evictions = metrics::GetCounter("brick_cache.evictions");
  metrics::Counter& invalidations =
      metrics::GetCounter("brick_cache.invalidations");
  metrics::Gauge& used_bytes = metrics::GetGauge("brick_cache.used_bytes");
};
CacheMetrics& Metrics() {
  static CacheMetrics m;
  return m;
}
}  // namespace

std::optional<Bytes> BrickCache::Get(const std::string& file,
                                     layout::BrickId brick) {
  MutexLock lock(mu_);
  const auto it = entries_.find({file, brick});
  if (it == entries_.end()) {
    ++misses_;
    Metrics().misses.Add();
    return std::nullopt;
  }
  ++hits_;
  Metrics().hits.Add();
  lru_.erase(it->second.lru_pos);
  lru_.push_front(it->first);
  it->second.lru_pos = lru_.begin();
  return it->second.image;
}

void BrickCache::Put(const std::string& file, layout::BrickId brick,
                     Bytes image) {
  if (image.size() > capacity_bytes_) return;
  MutexLock lock(mu_);
  const Key key{file, brick};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    used_bytes_ -= it->second.image.size();
    Metrics().used_bytes.Sub(
        static_cast<std::int64_t>(it->second.image.size()));
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  used_bytes_ += image.size();
  Metrics().used_bytes.Add(static_cast<std::int64_t>(image.size()));
  Metrics().insertions.Add();
  lru_.push_front(key);
  entries_[key] = Entry{std::move(image), lru_.begin()};
  EvictOverBudgetLocked();
}

void BrickCache::EvictOverBudgetLocked() {
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Key& victim = lru_.back();
    const auto it = entries_.find(victim);
    used_bytes_ -= it->second.image.size();
    Metrics().used_bytes.Sub(
        static_cast<std::int64_t>(it->second.image.size()));
    Metrics().evictions.Add();
    entries_.erase(it);
    lru_.pop_back();
  }
}

void BrickCache::Invalidate(const std::string& file, layout::BrickId brick) {
  MutexLock lock(mu_);
  const auto it = entries_.find({file, brick});
  if (it == entries_.end()) return;
  used_bytes_ -= it->second.image.size();
  Metrics().used_bytes.Sub(static_cast<std::int64_t>(it->second.image.size()));
  Metrics().invalidations.Add();
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void BrickCache::InvalidateFile(const std::string& file) {
  MutexLock lock(mu_);
  for (auto it = entries_.lower_bound({file, 0}); it != entries_.end();) {
    if (it->first.first != file) break;
    used_bytes_ -= it->second.image.size();
    Metrics().used_bytes.Sub(
        static_cast<std::int64_t>(it->second.image.size()));
    Metrics().invalidations.Add();
    lru_.erase(it->second.lru_pos);
    it = entries_.erase(it);
  }
}

void BrickCache::Clear() {
  MutexLock lock(mu_);
  Metrics().used_bytes.Sub(static_cast<std::int64_t>(used_bytes_));
  entries_.clear();
  lru_.clear();
  used_bytes_ = 0;
}

std::uint64_t BrickCache::size_bytes() const {
  MutexLock lock(mu_);
  return used_bytes_;
}
std::uint64_t BrickCache::hits() const {
  MutexLock lock(mu_);
  return hits_;
}
std::uint64_t BrickCache::misses() const {
  MutexLock lock(mu_);
  return misses_;
}

}  // namespace dpfs::client
