// The DPFS client library: the paper's API (§6) — DPFS-Open, DPFS-Read,
// DPFS-Write, DPFS-Close — plus the hint structure that selects a file level
// at creation time and derived-datatype access for non-contiguous I/O.
//
// A FileSystem instance binds a metadata database (the paper's POSTGRES) to
// a pool of TCP connections to the registered I/O servers. Many compute-node
// threads may share one FileSystem; each identifies itself with a client id
// on its FileHandle so the request-combination scheduler can stagger their
// starting servers (§4.2).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "client/brick_cache.h"
#include "client/conn_pool.h"
#include "client/datatype.h"
#include "client/metadata.h"
#include "client/remote_metadata.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "layout/plan.h"

namespace dpfs::client {

/// The hint structure (§6): everything the user knows about how the file
/// will be used, conveyed at creation.
struct CreateOptions {
  layout::FileLevel level = layout::FileLevel::kLinear;
  std::uint64_t element_size = 1;

  /// The logical array (multidim/array level; optional for linear so column
  /// access through a linear file still works, as in Fig 5).
  layout::Shape array_shape;
  /// Raw linear capacity in bytes, used when array_shape is empty.
  std::uint64_t total_bytes = 0;

  std::uint64_t brick_bytes = 64 * 1024;  // linear striping unit
  layout::Shape brick_shape;              // multidim striping unit
  std::optional<layout::HpfPattern> pattern;  // array level
  /// Array level chunk grid; empty → built from num_chunks.
  layout::Shape chunk_grid;
  std::uint64_t num_chunks = 0;

  layout::PlacementPolicy placement = layout::PlacementPolicy::kRoundRobin;
  /// "suggested number of I/O nodes by the user" (§6); 0 = every registered
  /// server.
  std::uint32_t suggested_io_nodes = 0;
  std::string owner = "dpfs";
  std::uint32_t permission = 0644;

  /// Extension (`replication`, docs/REPLICATION.md): total copies of every
  /// brick, primary included. 1 (the default) is the paper's semantics —
  /// layout, metadata rows, and wire frames stay byte-identical to the
  /// unreplicated system.
  std::uint32_t replication = 1;
  /// Failure domain of each server used by the file, in ListServers order
  /// (after suggested_io_nodes truncation). Empty = every server is its own
  /// domain. A brick's `replication` copies land in distinct domains.
  std::vector<std::uint32_t> failure_domains;
};

/// Per-access options.
struct IoOptions {
  bool combine = true;       // §4.2 request combination
  bool rotate_start = true;  // §4.2 schedule staggering
  bool sync = false;         // fsync writes on the server
  /// true = the paper's §3.2 READ semantics (fetch whole bricks, discard the
  /// rest). false = sieve reads, a DPFS extension that fetches only the
  /// useful runs — fewer wire bytes, more fragments per request.
  bool whole_brick_reads = true;
  /// Extension: issue this access's per-server requests from concurrent
  /// dispatch threads instead of the paper's sequential loop. Most useful
  /// with combine=true, where one client talks to every server.
  bool parallel_dispatch = false;
  /// Extension: serve derived-datatype accesses (WriteType/ReadType on
  /// linear files) as list I/O — one list_read/list_write request per server
  /// naming every extent, instead of one access per coalesced extent
  /// (docs/NONCONTIGUOUS_IO.md). Ignores whole_brick_reads and combine (a
  /// list plan always combines and moves only the listed bytes).
  bool list_io = false;
  /// Transient-failure retries per request ("the un-handled requests have
  /// to try again later", §4.2): busy servers and refused connections are
  /// retried with linear backoff; other errors are not.
  int max_retries = 3;
  /// Upper bound on one wire request's payload: a combined request whose
  /// data exceeds this is split into several frames on the same connection
  /// (frames are capped at 1 GiB by the protocol; this also bounds peak
  /// buffering). Plan-level request counts are unaffected.
  std::uint64_t max_request_bytes = 64ull << 20;
};

/// An open DPFS file. Cheap to copy per compute-node thread; set client_id
/// to the thread's rank before issuing collective-style accesses.
struct FileHandle {
  FileRecord record;
  layout::BrickMap map;
  std::uint32_t client_id = 0;

  [[nodiscard]] const FileMeta& meta() const noexcept { return record.meta; }
};

/// Counters for one access, used by benchmarks and tests.
struct IoReport {
  std::size_t requests = 0;
  /// Of `requests`, how many carried more than one brick — i.e. how often
  /// §4.2 request combination actually fired for this access.
  std::size_t combined_requests = 0;
  std::uint64_t transfer_bytes = 0;
  std::uint64_t useful_bytes = 0;
  /// Retry/backoff observability (§4.2 "try again later"): attempts beyond
  /// each request's first, how many were triggered by a busy server, and
  /// the total linear-backoff sleep injected. Accumulated even when the
  /// access ultimately fails (retry exhaustion is visible).
  std::size_t retries = 0;
  std::size_t busy_retries = 0;
  std::uint64_t backoff_ms = 0;
  /// Replication extension (docs/REPLICATION.md): reads that were served by
  /// a replica rank > 0 after the preferred copy failed, and write-side
  /// replica requests that failed while the brick stayed durable on at
  /// least one other rank (the access still succeeds; the file is degraded).
  std::size_t failover_reads = 0;
  std::size_t replica_write_failures = 0;
};

class FileSystem {
 public:
  /// Binds to (and initializes if needed) the metadata database.
  static Result<std::shared_ptr<FileSystem>> Connect(
      std::shared_ptr<metadb::Database> db);
  /// Sharded variant (`metadb_shards` extension): same semantics, metadata
  /// rows are spread across the facade's path-hash shards.
  static Result<std::shared_ptr<FileSystem>> Connect(
      std::shared_ptr<metadb::ShardedDatabase> db);
  /// Remote variant (`metadata_endpoint` extension): namespace operations
  /// go to a dpfs-metad service instead of an embedded database, so many
  /// client processes share one mutable namespace. Record caching moves to
  /// the RemoteMetadataManager (TTL + invalidate-on-own-write); embedded
  /// connects are byte-identical to before this extension existed.
  static Result<std::shared_ptr<FileSystem>> ConnectRemote(
      const net::Endpoint& endpoint, RemoteMetadataOptions options = {});

  [[nodiscard]] MetadataService& metadata() noexcept { return *metadata_; }
  /// The embedded manager, or nullptr when connected to a remote metad.
  /// Consumers that reach past the namespace API into the database itself
  /// (the shell's `sql` command, fsck, tests) must run embedded.
  [[nodiscard]] MetadataManager* embedded_metadata() noexcept {
    return embedded_;
  }

  // --- lifecycle (§6 API) -------------------------------------------------
  Result<FileHandle> Create(const std::string& path,
                            const CreateOptions& options);
  /// Opens a file. Records are cached per FileSystem instance (brick
  /// placement is immutable after creation, so the cache can only go stale
  /// through out-of-band deletion by another client — call
  /// InvalidateMetadataCache after such events).
  Result<FileHandle> Open(const std::string& path);
  /// DPFS-Close (§6). Handles are RAII values, so this only resets the
  /// handle; provided for API parity with the paper and for making the end
  /// of a handle's life explicit in application code.
  static void Close(FileHandle& handle) noexcept { handle = FileHandle{}; }
  /// Deletes subfiles on every server, then the metadata rows.
  Status Remove(const std::string& path);
  /// Removes a directory; with `recursive`, removes contained files (with
  /// their subfiles) and subdirectories first. Prefer this over
  /// MetadataManager::RemoveDirectory, which touches metadata only.
  Status RemoveDirectory(const std::string& path, bool recursive);
  /// Renames a file without moving data bytes: subfiles are renamed on each
  /// server, then the metadata rows are updated in one transaction.
  Status Rename(const std::string& from, const std::string& to);

  /// Drops every cached file record (or one path's).
  void InvalidateMetadataCache();
  void InvalidateMetadataCache(const std::string& path);
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  [[nodiscard]] CacheStats metadata_cache_stats() const;

  // --- element-region access (multidim / array / linear-array files) ------
  Status WriteRegion(FileHandle& handle, const layout::Region& region,
                     ByteSpan data, const IoOptions& options = {},
                     IoReport* report = nullptr);
  Status ReadRegion(FileHandle& handle, const layout::Region& region,
                    MutableByteSpan out, const IoOptions& options = {},
                    IoReport* report = nullptr);

  // --- byte-extent access (linear files) ----------------------------------
  Status WriteBytes(FileHandle& handle, std::uint64_t offset, ByteSpan data,
                    const IoOptions& options = {}, IoReport* report = nullptr);
  Status ReadBytes(FileHandle& handle, std::uint64_t offset,
                   MutableByteSpan out, const IoOptions& options = {},
                   IoReport* report = nullptr);

  // --- derived-datatype access (linear files, §6) --------------------------
  Status WriteType(FileHandle& handle, std::uint64_t base_offset,
                   const Datatype& type, ByteSpan data,
                   const IoOptions& options = {}, IoReport* report = nullptr);
  Status ReadType(FileHandle& handle, std::uint64_t base_offset,
                  const Datatype& type, MutableByteSpan out,
                  const IoOptions& options = {}, IoReport* report = nullptr);

  [[nodiscard]] ConnectionPool& connections() noexcept { return pool_; }

  /// Enables the client-side whole-brick cache (extension; see
  /// brick_cache.h). Idempotent; replaces any existing cache. Whole-brick
  /// reads are served locally on hit; writes invalidate the bricks they
  /// touch; Remove/Rename invalidate the file.
  void EnableBrickCache(std::uint64_t capacity_bytes);

  /// Extension: record every access's request/transfer/useful counters in
  /// the DPFS_ACCESS_LOG table, enabling AdviseLevel.
  void SetAccessLogging(bool enabled) noexcept {
    access_logging_.store(enabled, std::memory_order_relaxed);
  }
  /// Human-readable striping advice for `path` based on its observed
  /// accesses (wire efficiency and request counts) — the data-driven
  /// counterpart of the §6 hint structure.
  Result<std::string> AdviseLevel(const std::string& path);

  /// Consistency check between the metadata database and the servers'
  /// actual subfiles. Orphans (subfiles with no DPFS_FILE_ATTR row —
  /// leftovers of interrupted deletes) are reported and, with `repair`,
  /// removed. A missing subfile is NOT an error: never-written files are
  /// legitimately absent (sparse semantics).
  struct FsckReport {
    struct Orphan {
      std::string server;
      std::string subfile;
      std::uint64_t size = 0;
    };
    std::vector<Orphan> orphans;
    std::vector<std::string> unreachable_servers;
    std::size_t files_checked = 0;
    std::size_t servers_checked = 0;
    std::size_t repaired = 0;

    [[nodiscard]] bool clean() const noexcept {
      return orphans.empty() && unreachable_servers.empty();
    }
  };
  Result<FsckReport> Fsck(bool repair = false);
  /// nullptr when not enabled.
  [[nodiscard]] BrickCache* brick_cache() noexcept {
    return brick_cache_.get();
  }

 private:
  explicit FileSystem(std::unique_ptr<MetadataManager> metadata)
      : metadata_(std::move(metadata)),
        embedded_(static_cast<MetadataManager*>(metadata_.get())) {}
  explicit FileSystem(std::unique_ptr<RemoteMetadataManager> metadata)
      : metadata_(std::move(metadata)),
        remote_(static_cast<RemoteMetadataManager*>(metadata_.get())) {}

  using RunsByBrick =
      std::unordered_map<layout::BrickId, std::vector<layout::BrickRun>>;

  /// Retry counters shared by concurrent dispatch threads, folded into the
  /// caller's IoReport when the plan finishes (defined in file_system.cpp).
  struct RetryTally;

  /// Issues the plan's requests (sequentially, or concurrently with
  /// parallel_dispatch). Exactly one of write_data / read_buffer is used,
  /// per plan.direction.
  Status ExecutePlan(const FileHandle& handle, const layout::ClientPlan& plan,
                     const RunsByBrick& runs, ByteSpan write_data,
                     MutableByteSpan read_buffer, const IoOptions& options,
                     IoReport* report);
  /// One client→server request with transient-failure retries (the body of
  /// the dispatch loop).
  Status ExecuteOneRequest(const FileHandle& handle,
                           const layout::ServerRequest& request,
                           const RunsByBrick& runs, ByteSpan write_data,
                           MutableByteSpan read_buffer, bool is_write,
                           const IoOptions& options, RetryTally& tally);
  /// A single attempt of the above.
  Status TryOneRequest(const FileHandle& handle,
                       const layout::ServerRequest& request,
                       const RunsByBrick& runs, ByteSpan write_data,
                       MutableByteSpan read_buffer, bool is_write,
                       const IoOptions& options);
  /// Replication extension: executes one read request against the first
  /// rank that answers — non-suspect ranks first, retry-exhausting each,
  /// marking failed ranks' servers suspect. Counts a failover read when a
  /// rank > 0 serves the bytes.
  Status ExecuteReadWithFailover(const FileHandle& handle,
                                 const layout::ServerRequest& request,
                                 const RunsByBrick& runs,
                                 MutableByteSpan read_buffer,
                                 const IoOptions& options, RetryTally& tally);
  /// Suspect bookkeeping for read failover: a server that failed a request
  /// is deprioritized (not excluded) for kSuspectTtl.
  void MarkSuspect(const std::string& endpoint_key);
  [[nodiscard]] bool IsSuspect(const std::string& endpoint_key);
  /// List-I/O execution of a flattened datatype access (IoOptions::list_io):
  /// builds one PlanListAccess plan over the extents (shifted by
  /// base_offset) and executes it as list_read/list_write requests.
  Status ExecuteListAccess(const FileHandle& handle, std::uint64_t base_offset,
                           const std::vector<ByteExtent>& extents,
                           ByteSpan write_data, MutableByteSpan read_buffer,
                           layout::IoDirection direction,
                           const IoOptions& options, IoReport* report);
  ThreadPool& DispatchPool();

  std::unique_ptr<MetadataService> metadata_;
  /// Exactly one of these aliases metadata_ (the other is nullptr).
  MetadataManager* embedded_ = nullptr;
  RemoteMetadataManager* remote_ = nullptr;
  ConnectionPool pool_;
  std::unique_ptr<BrickCache> brick_cache_;
  std::atomic<bool> access_logging_{false};
  Mutex dispatch_mu_;
  // Created once under dispatch_mu_, never reset; the returned reference
  // outlives the lock because the pointee is immutable after creation.
  std::unique_ptr<ThreadPool> dispatch_pool_ DPFS_GUARDED_BY(dispatch_mu_);

  mutable Mutex cache_mu_;
  std::map<std::string, FileRecord> record_cache_
      DPFS_GUARDED_BY(cache_mu_);  // key: normalized path
  std::uint64_t cache_hits_ DPFS_GUARDED_BY(cache_mu_) = 0;
  std::uint64_t cache_misses_ DPFS_GUARDED_BY(cache_mu_) = 0;

  Mutex suspect_mu_;
  /// endpoint key ("host:port") → when the suspicion expires.
  std::map<std::string, std::chrono::steady_clock::time_point> suspects_
      DPFS_GUARDED_BY(suspect_mu_);
};

}  // namespace dpfs::client
