// MPI-IO-style derived datatypes (§6).
//
// DPFS adopts MPI-IO's derived-datatype approach to express non-contiguous
// access: a Datatype is a reusable description of a byte layout in the file,
// built by composing constructors (contiguous, vector, indexed), and is
// flattened into coalesced byte extents when an access is issued.
//
// A Datatype is an immutable value; copying is cheap (shared payload).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"

namespace dpfs::client {

/// One contiguous byte extent in file space.
struct ByteExtent {
  std::uint64_t offset = 0;  // relative to the access's base offset
  std::uint64_t length = 0;

  friend bool operator==(const ByteExtent&, const ByteExtent&) = default;
};

class Datatype {
 public:
  /// `n` contiguous bytes — the elementary type.
  static Datatype Bytes(std::uint64_t n);

  /// `count` copies of `base`, back to back.
  static Result<Datatype> Contiguous(std::uint64_t count,
                                     const Datatype& base);

  /// MPI_Type_vector: `count` blocks of `blocklength` base elements, the
  /// start of consecutive blocks `stride` base-extents apart.
  static Result<Datatype> Vector(std::uint64_t count,
                                 std::uint64_t blocklength,
                                 std::uint64_t stride, const Datatype& base);

  /// MPI_Type_indexed: block i has `blocks[i].second` base elements starting
  /// at displacement `blocks[i].first` (in base extents).
  static Result<Datatype> Indexed(
      const std::vector<std::pair<std::uint64_t, std::uint64_t>>& blocks,
      const Datatype& base);

  /// MPI_Type_create_subarray: the region `lower`/`extent` of a row-major
  /// N-d array of `array_shape` elements, each `element_bytes` wide. The
  /// datatype's extent spans the whole array, so a base offset of 0 reads
  /// the subarray of a file whose bytes are the flattened array.
  static Result<Datatype> Subarray(
      const std::vector<std::uint64_t>& array_shape,
      const std::vector<std::uint64_t>& lower,
      const std::vector<std::uint64_t>& extent, std::uint64_t element_bytes);

  /// Total payload bytes (sum of extent lengths) — the buffer size an access
  /// with this type moves.
  [[nodiscard]] std::uint64_t size() const noexcept;

  /// Span in file space: max(offset + length) over all extents. This is the
  /// "extent" used as the unit of displacement by the composers.
  [[nodiscard]] std::uint64_t extent() const noexcept;

  /// The coalesced extents, offsets relative to 0. Adding `base_offset`
  /// yields absolute file positions.
  [[nodiscard]] const std::vector<ByteExtent>& extents() const noexcept;

  [[nodiscard]] std::size_t num_extents() const noexcept {
    return extents().size();
  }

 private:
  struct Payload {
    std::vector<ByteExtent> extents;
    std::uint64_t size = 0;
    std::uint64_t extent = 0;
  };
  explicit Datatype(std::shared_ptr<const Payload> payload)
      : payload_(std::move(payload)) {}
  static Datatype FromExtents(std::vector<ByteExtent> extents,
                              std::uint64_t logical_extent);

  std::shared_ptr<const Payload> payload_;
};

/// Sorts by offset and merges adjacent/overlapping extents.
std::vector<ByteExtent> CoalesceExtents(std::vector<ByteExtent> extents);

}  // namespace dpfs::client
