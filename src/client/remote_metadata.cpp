#include "client/remote_metadata.h"

#include <utility>

#include "client/conn_pool.h"
#include "client/meta_wire.h"
#include "common/metrics.h"
#include "common/strings.h"
#include "layout/placement.h"
#include "net/messages.h"

namespace dpfs::client {

namespace {

// Same instruments the embedded record cache feeds (file_system.cpp): one
// process-wide hit/miss pair regardless of which cache implementation runs.
struct CacheMetricsT {
  metrics::Counter& hits = metrics::GetCounter("client.metadata_cache.hits");
  metrics::Counter& misses =
      metrics::GetCounter("client.metadata_cache.misses");
};
CacheMetricsT& CacheMetrics() {
  static CacheMetricsT m;
  return m;
}

}  // namespace

Result<std::unique_ptr<RemoteMetadataManager>> RemoteMetadataManager::Connect(
    const net::Endpoint& endpoint, RemoteMetadataOptions options) {
  std::unique_ptr<RemoteMetadataManager> manager(
      new RemoteMetadataManager(endpoint, options));
  DPFS_RETURN_IF_ERROR(
      manager->Ping().WithContext("connect to metadata server at " +
                                  endpoint.ToString()));
  return manager;
}

Result<Bytes> RemoteMetadataManager::Call(net::MessageType type,
                                          ByteSpan body) {
  MutexLock lock(conn_mu_);
  // Staleness probe + redial shared with the data-path pool
  // (client/conn_pool.h): a metad restart between calls is absorbed here,
  // counted by conn_pool.redials.
  DPFS_RETURN_IF_ERROR(EnsureFreshConnection(conn_, endpoint_));
  Result<Bytes> reply = conn_->Call(type, body);
  if (!reply.ok() && reply.status().code() == StatusCode::kUnavailable) {
    // Transport failure (or a server refusing service): abandon the
    // connection so the next operation redials — a restarted metad is
    // picked up without caller involvement.
    conn_.reset();
  }
  return reply;
}

Status RemoteMetadataManager::Ping() {
  return Call(net::MessageType::kPing, {}).status();
}

Result<std::string> RemoteMetadataManager::FetchMetrics() {
  DPFS_ASSIGN_OR_RETURN(const Bytes reply,
                        Call(net::MessageType::kMetrics, {}));
  BinaryReader reader(reply);
  return reader.ReadString();
}

// --- DPFS_SERVER -----------------------------------------------------------

Status RemoteMetadataManager::RegisterServer(const ServerInfo& server) {
  meta_wire::ServerRequest request;
  request.server = server;
  BinaryWriter body;
  request.Encode(body);
  return Call(net::MessageType::kMetaRegisterServer, body.buffer()).status();
}

Status RemoteMetadataManager::UnregisterServer(const std::string& name) {
  meta_wire::NameRequest request;
  request.name = name;
  BinaryWriter body;
  request.Encode(body);
  return Call(net::MessageType::kMetaUnregisterServer, body.buffer()).status();
}

Result<std::vector<ServerInfo>> RemoteMetadataManager::ListServers() {
  DPFS_ASSIGN_OR_RETURN(const Bytes reply,
                        Call(net::MessageType::kMetaListServers, {}));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(meta_wire::ServerListReply decoded,
                        meta_wire::ServerListReply::Decode(reader));
  return std::move(decoded.servers);
}

Result<ServerInfo> RemoteMetadataManager::LookupServer(
    const std::string& name) {
  meta_wire::NameRequest request;
  request.name = name;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaLookupServer, body.buffer()));
  BinaryReader reader(reply);
  return meta_wire::DecodeServerInfo(reader);
}

// --- files -----------------------------------------------------------------

Status RemoteMetadataManager::CreateFile(
    const FileMeta& meta, const std::vector<std::string>& server_names,
    const layout::BrickDistribution& distribution,
    const std::vector<layout::BrickDistribution>& replicas) {
  meta_wire::CreateFileRequest request;
  request.meta = meta;
  request.server_names = server_names;
  request.bricklists.reserve(distribution.num_servers());
  for (std::uint32_t i = 0; i < distribution.num_servers(); ++i) {
    request.bricklists.push_back(
        layout::BrickDistribution::EncodeBrickList(distribution.bricks_on(i)));
  }
  request.replica_bricklists.reserve(replicas.size());
  for (const layout::BrickDistribution& rank : replicas) {
    std::vector<std::string> lists;
    lists.reserve(rank.num_servers());
    for (std::uint32_t i = 0; i < rank.num_servers(); ++i) {
      lists.push_back(
          layout::BrickDistribution::EncodeBrickList(rank.bricks_on(i)));
    }
    request.replica_bricklists.push_back(std::move(lists));
  }
  BinaryWriter body;
  request.Encode(body);
  const Status created =
      Call(net::MessageType::kMetaCreateFile, body.buffer()).status();
  // Invalidate even on failure: a lost reply may have committed server-side.
  InvalidateCache(meta.path);
  return created;
}

Result<FileRecord> RemoteMetadataManager::LookupFile(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (options_.cache_ttl.count() > 0) {
    MutexLock lock(cache_mu_);
    const auto it = cache_.find(normalized);
    if (it != cache_.end() &&
        std::chrono::steady_clock::now() < it->second.expires) {
      ++cache_hits_;
      CacheMetrics().hits.Add();
      return it->second.record;
    }
    ++cache_misses_;
    CacheMetrics().misses.Add();
  }
  meta_wire::PathRequest request;
  request.path = normalized;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaLookupFile, body.buffer()));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(meta_wire::FileRecordReply decoded,
                        meta_wire::FileRecordReply::Decode(reader));
  if (options_.cache_ttl.count() > 0) {
    MutexLock lock(cache_mu_);
    cache_[normalized] = CacheEntry{
        decoded.record, std::chrono::steady_clock::now() + options_.cache_ttl};
  }
  return std::move(decoded.record);
}

Status RemoteMetadataManager::UpdateFileSize(const std::string& path,
                                             std::uint64_t size_bytes) {
  meta_wire::UpdateSizeRequest request;
  request.path = path;
  request.size_bytes = size_bytes;
  BinaryWriter body;
  request.Encode(body);
  const Status updated =
      Call(net::MessageType::kMetaUpdateSize, body.buffer()).status();
  InvalidateCache(path);
  return updated;
}

Status RemoteMetadataManager::SetPermission(const std::string& path,
                                            std::uint32_t permission) {
  meta_wire::SetPermissionRequest request;
  request.path = path;
  request.permission = permission;
  BinaryWriter body;
  request.Encode(body);
  const Status set =
      Call(net::MessageType::kMetaSetPermission, body.buffer()).status();
  InvalidateCache(path);
  return set;
}

Status RemoteMetadataManager::SetOwner(const std::string& path,
                                       const std::string& owner) {
  meta_wire::SetOwnerRequest request;
  request.path = path;
  request.owner = owner;
  BinaryWriter body;
  request.Encode(body);
  const Status set =
      Call(net::MessageType::kMetaSetOwner, body.buffer()).status();
  InvalidateCache(path);
  return set;
}

Status RemoteMetadataManager::DeleteFile(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  const Status deleted =
      Call(net::MessageType::kMetaDeleteFile, body.buffer()).status();
  InvalidateCache(path);
  return deleted;
}

Result<bool> RemoteMetadataManager::FileExists(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaFileExists, body.buffer()));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(const meta_wire::BoolReply decoded,
                        meta_wire::BoolReply::Decode(reader));
  return decoded.value;
}

Status RemoteMetadataManager::RenameFile(const std::string& from,
                                         const std::string& to) {
  meta_wire::RenameRequest request;
  request.from = from;
  request.to = to;
  BinaryWriter body;
  request.Encode(body);
  const Status renamed =
      Call(net::MessageType::kMetaRenameFile, body.buffer()).status();
  InvalidateCache(from);
  InvalidateCache(to);
  return renamed;
}

// --- access log ------------------------------------------------------------

Status RemoteMetadataManager::LogAccess(const std::string& path, bool is_write,
                                        std::uint64_t requests,
                                        std::uint64_t transfer_bytes,
                                        std::uint64_t useful_bytes) {
  meta_wire::LogAccessRequest request;
  request.path = path;
  request.is_write = is_write;
  request.requests = requests;
  request.transfer_bytes = transfer_bytes;
  request.useful_bytes = useful_bytes;
  BinaryWriter body;
  request.Encode(body);
  return Call(net::MessageType::kMetaLogAccess, body.buffer()).status();
}

Result<MetadataService::AccessSummary>
RemoteMetadataManager::SummarizeAccess(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaSummarizeAccess, body.buffer()));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(const meta_wire::AccessSummaryReply decoded,
                        meta_wire::AccessSummaryReply::Decode(reader));
  return decoded.summary;
}

Status RemoteMetadataManager::ClearAccessLog(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  return Call(net::MessageType::kMetaClearAccessLog, body.buffer()).status();
}

// --- directories -----------------------------------------------------------

Status RemoteMetadataManager::MakeDirectory(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  return Call(net::MessageType::kMetaMakeDirectory, body.buffer()).status();
}

Status RemoteMetadataManager::RemoveDirectory(const std::string& path,
                                              bool recursive) {
  meta_wire::RemoveDirectoryRequest request;
  request.path = path;
  request.recursive = recursive;
  BinaryWriter body;
  request.Encode(body);
  const Status removed =
      Call(net::MessageType::kMetaRemoveDirectory, body.buffer()).status();
  if (recursive) InvalidateCache();  // may have deleted cached files
  return removed;
}

Result<bool> RemoteMetadataManager::DirectoryExists(const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaDirectoryExists, body.buffer()));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(const meta_wire::BoolReply decoded,
                        meta_wire::BoolReply::Decode(reader));
  return decoded.value;
}

Result<MetadataService::Listing> RemoteMetadataManager::ListDirectory(
    const std::string& path) {
  meta_wire::PathRequest request;
  request.path = path;
  BinaryWriter body;
  request.Encode(body);
  DPFS_ASSIGN_OR_RETURN(
      const Bytes reply,
      Call(net::MessageType::kMetaListDirectory, body.buffer()));
  BinaryReader reader(reply);
  DPFS_ASSIGN_OR_RETURN(meta_wire::ListingReply decoded,
                        meta_wire::ListingReply::Decode(reader));
  return std::move(decoded.listing);
}

// --- cache -----------------------------------------------------------------

void RemoteMetadataManager::InvalidateCache() {
  MutexLock lock(cache_mu_);
  cache_.clear();
}

void RemoteMetadataManager::InvalidateCache(const std::string& path) {
  const Result<std::string> normalized = NormalizePath(path);
  if (!normalized.ok()) return;
  MutexLock lock(cache_mu_);
  cache_.erase(normalized.value());
}

RemoteMetadataManager::CacheStats RemoteMetadataManager::cache_stats() const {
  MutexLock lock(cache_mu_);
  return CacheStats{cache_hits_, cache_misses_};
}

}  // namespace dpfs::client
