#include "client/metadata.h"

#include <algorithm>

#include "common/strings.h"

namespace dpfs::client {
namespace {

/// SQL string literal with '' escaping.
std::string Quote(std::string_view text) {
  std::string out = "'";
  for (const char c : text) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += "'";
  return out;
}

std::string EncodeShape(const layout::Shape& shape) {
  std::string out;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (d > 0) out += ',';
    out += std::to_string(shape[d]);
  }
  return out;
}

Result<layout::Shape> DecodeShape(std::string_view text) {
  layout::Shape shape;
  if (TrimWhitespace(text).empty()) return shape;
  for (const std::string& token : SplitString(text, ',')) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t v, ParseInt64(token));
    if (v <= 0) return InvalidArgumentError("bad shape component in metadata");
    shape.push_back(static_cast<std::uint64_t>(v));
  }
  return shape;
}

/// Comma-separated name list used by DPFS_DIRECTORY columns.
std::vector<std::string> DecodeNameList(std::string_view text) {
  std::vector<std::string> names;
  if (TrimWhitespace(text).empty()) return names;
  for (const std::string& token : SplitString(text, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  return names;
}

std::string EncodeNameList(const std::vector<std::string>& names) {
  return JoinStrings(names, ",");
}

/// RAII transaction guard: rolls back unless Commit() succeeded.
class Transaction {
 public:
  explicit Transaction(metadb::Database& db) : db_(db) {}
  Status Begin() { return db_.Execute("BEGIN").status(); }
  Status Commit() {
    committed_ = true;
    return db_.Execute("COMMIT").status();
  }
  ~Transaction() {
    if (!committed_) (void)db_.Execute("ROLLBACK");
  }

 private:
  metadb::Database& db_;
  bool committed_ = false;
};

}  // namespace

Result<layout::BrickMap> FileMeta::MakeBrickMap() const {
  switch (level) {
    case layout::FileLevel::kLinear:
      if (!array_shape.empty()) {
        return layout::BrickMap::LinearArray(array_shape, element_size,
                                             brick_bytes);
      }
      return layout::BrickMap::Linear(size_bytes, brick_bytes);
    case layout::FileLevel::kMultidim:
      return layout::BrickMap::Multidim(array_shape, brick_shape,
                                        element_size);
    case layout::FileLevel::kArray: {
      if (!pattern.has_value()) {
        return InternalError("array-level file missing HPF pattern");
      }
      layout::ProcessGrid grid;
      grid.grid = chunk_grid;
      return layout::BrickMap::Array(array_shape, *pattern, grid,
                                     element_size);
    }
  }
  return InternalError("bad file level in metadata");
}

Result<std::unique_ptr<MetadataManager>> MetadataManager::Attach(
    std::shared_ptr<metadb::Database> db) {
  std::unique_ptr<MetadataManager> manager(
      new MetadataManager(std::move(db)));
  DPFS_RETURN_IF_ERROR(manager->EnsureTables());
  return manager;
}

Status MetadataManager::EnsureTables() {
  static constexpr const char* kDdl[] = {
      "CREATE TABLE IF NOT EXISTS DPFS_SERVER ("
      "  server_name TEXT PRIMARY KEY, host TEXT, port INT,"
      "  capacity INT, performance INT)",
      "CREATE TABLE IF NOT EXISTS DPFS_FILE_DISTRIBUTION ("
      "  filename TEXT, server TEXT, server_index INT, bricklist TEXT)",
      "CREATE TABLE IF NOT EXISTS DPFS_DIRECTORY ("
      "  main_dir TEXT PRIMARY KEY, sub_dirs TEXT, files TEXT)",
      "CREATE TABLE IF NOT EXISTS DPFS_FILE_ATTR ("
      "  filename TEXT PRIMARY KEY, owner TEXT, permission INT, size INT,"
      "  filelevel TEXT, elemsize INT, dims INT, dimsize TEXT,"
      "  brickbytes INT, stripe TEXT, pattern TEXT, grid TEXT)",
      // Extension: per-access observations feeding level advice.
      "CREATE TABLE IF NOT EXISTS DPFS_ACCESS_LOG ("
      "  filename TEXT, direction TEXT, requests INT,"
      "  transfer INT, useful INT)",
  };
  for (const char* ddl : kDdl) {
    DPFS_RETURN_IF_ERROR(db_->Execute(ddl).status());
  }
  // Distribution rows are keyed by filename (one row per server per file);
  // index them so DPFS-Open's lookup is a probe, not a scan. Same for the
  // access log's per-file summaries.
  DPFS_RETURN_IF_ERROR(
      db_->CreateIndex("DPFS_FILE_DISTRIBUTION", "filename"));
  DPFS_RETURN_IF_ERROR(db_->CreateIndex("DPFS_ACCESS_LOG", "filename"));

  // The root directory always exists.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet root,
      db_->Execute("SELECT main_dir FROM DPFS_DIRECTORY WHERE main_dir = '/'"));
  if (root.empty()) {
    DPFS_RETURN_IF_ERROR(
        db_->Execute(
               "INSERT INTO DPFS_DIRECTORY VALUES ('/', '', '')")
            .status());
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Servers

Status MetadataManager::RegisterServer(const ServerInfo& server) {
  const std::string sql =
      "INSERT INTO DPFS_SERVER VALUES (" + Quote(server.name) + ", " +
      Quote(server.endpoint.host) + ", " +
      std::to_string(server.endpoint.port) + ", " +
      std::to_string(server.capacity_bytes) + ", " +
      std::to_string(server.performance) + ")";
  return db_->Execute(sql).status();
}

Status MetadataManager::UnregisterServer(const std::string& name) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("DELETE FROM DPFS_SERVER WHERE server_name = " +
                   Quote(name)));
  if (result.affected_rows == 0) {
    return NotFoundError("no server '" + name + "'");
  }
  return Status::Ok();
}

namespace {

Result<ServerInfo> ServerFromRow(const metadb::ResultSet& result,
                                 std::size_t row) {
  ServerInfo server;
  DPFS_ASSIGN_OR_RETURN(server.name, result.GetText(row, "server_name"));
  DPFS_ASSIGN_OR_RETURN(server.endpoint.host, result.GetText(row, "host"));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t port, result.GetInt(row, "port"));
  server.endpoint.port = static_cast<std::uint16_t>(port);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t capacity,
                        result.GetInt(row, "capacity"));
  server.capacity_bytes = static_cast<std::uint64_t>(capacity);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t performance,
                        result.GetInt(row, "performance"));
  server.performance = static_cast<std::uint32_t>(performance);
  return server;
}

}  // namespace

Result<std::vector<ServerInfo>> MetadataManager::ListServers() {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("SELECT * FROM DPFS_SERVER ORDER BY server_name"));
  std::vector<ServerInfo> servers;
  servers.reserve(result.size());
  for (std::size_t row = 0; row < result.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(ServerInfo server, ServerFromRow(result, row));
    servers.push_back(std::move(server));
  }
  return servers;
}

Result<ServerInfo> MetadataManager::LookupServer(const std::string& name) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("SELECT * FROM DPFS_SERVER WHERE server_name = " +
                   Quote(name)));
  if (result.empty()) return NotFoundError("no server '" + name + "'");
  return ServerFromRow(result, 0);
}

// ---------------------------------------------------------------------------
// Access log (extension)

Status MetadataManager::LogAccess(const std::string& path, bool is_write,
                                  std::uint64_t requests,
                                  std::uint64_t transfer_bytes,
                                  std::uint64_t useful_bytes) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  return db_
      ->Execute("INSERT INTO DPFS_ACCESS_LOG VALUES (" + Quote(normalized) +
                ", " + (is_write ? "'write'" : "'read'") + ", " +
                std::to_string(requests) + ", " +
                std::to_string(transfer_bytes) + ", " +
                std::to_string(useful_bytes) + ")")
      .status();
}

Result<MetadataManager::AccessSummary> MetadataManager::SummarizeAccess(
    const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet rows,
      db_->Execute("SELECT requests, transfer, useful FROM DPFS_ACCESS_LOG "
                   "WHERE filename = " +
                   Quote(normalized)));
  AccessSummary summary;
  summary.accesses = rows.size();
  for (std::size_t row = 0; row < rows.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t requests,
                          rows.GetInt(row, "requests"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t transfer,
                          rows.GetInt(row, "transfer"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t useful,
                          rows.GetInt(row, "useful"));
    summary.requests += static_cast<std::uint64_t>(requests);
    summary.transfer_bytes += static_cast<std::uint64_t>(transfer);
    summary.useful_bytes += static_cast<std::uint64_t>(useful);
  }
  return summary;
}

Status MetadataManager::ClearAccessLog(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  return db_
      ->Execute("DELETE FROM DPFS_ACCESS_LOG WHERE filename = " +
                Quote(normalized))
      .status();
}

// ---------------------------------------------------------------------------
// Directories

Result<bool> MetadataManager::DirectoryExists(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("SELECT main_dir FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(normalized)));
  return !result.empty();
}

Result<bool> MetadataManager::FileExists(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("SELECT filename FROM DPFS_FILE_ATTR WHERE filename = " +
                   Quote(normalized)));
  return !result.empty();
}

Status MetadataManager::MakeDirectory(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (normalized == "/") return AlreadyExistsError("'/' already exists");
  const auto [parent, name] = SplitPath(normalized);

  DPFS_ASSIGN_OR_RETURN(const bool parent_exists, DirectoryExists(parent));
  if (!parent_exists) {
    return NotFoundError("parent directory '" + parent + "' does not exist");
  }
  DPFS_ASSIGN_OR_RETURN(const bool exists, DirectoryExists(normalized));
  if (exists) {
    return AlreadyExistsError("directory '" + normalized + "' exists");
  }
  DPFS_ASSIGN_OR_RETURN(const bool file_exists, FileExists(normalized));
  if (file_exists) {
    return AlreadyExistsError("'" + normalized + "' exists as a file");
  }

  // §5: update the parent row's sub-dirs and insert a new row.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet parent_row,
      db_->Execute("SELECT sub_dirs FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(parent)));
  DPFS_ASSIGN_OR_RETURN(const std::string sub_dirs,
                        parent_row.GetText(0, "sub_dirs"));
  std::vector<std::string> names = DecodeNameList(sub_dirs);
  names.push_back(name);

  Transaction txn(*db_);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("UPDATE DPFS_DIRECTORY SET sub_dirs = " +
                   Quote(EncodeNameList(names)) + " WHERE main_dir = " +
                   Quote(parent))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("INSERT INTO DPFS_DIRECTORY VALUES (" + Quote(normalized) +
                   ", '', '')")
          .status());
  return txn.Commit();
}

Result<MetadataManager::Listing> MetadataManager::ListDirectory(
    const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("SELECT sub_dirs, files FROM DPFS_DIRECTORY "
                   "WHERE main_dir = " +
                   Quote(normalized)));
  if (result.empty()) {
    return NotFoundError("no such directory '" + normalized + "'");
  }
  Listing listing;
  DPFS_ASSIGN_OR_RETURN(const std::string sub_dirs,
                        result.GetText(0, "sub_dirs"));
  DPFS_ASSIGN_OR_RETURN(const std::string files, result.GetText(0, "files"));
  listing.directories = DecodeNameList(sub_dirs);
  listing.files = DecodeNameList(files);
  std::sort(listing.directories.begin(), listing.directories.end());
  std::sort(listing.files.begin(), listing.files.end());
  return listing;
}

Status MetadataManager::RemoveDirectory(const std::string& path,
                                        bool recursive) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (normalized == "/") {
    return InvalidArgumentError("cannot remove the root directory");
  }
  DPFS_ASSIGN_OR_RETURN(const Listing listing, ListDirectory(normalized));
  if (!recursive && (!listing.directories.empty() || !listing.files.empty())) {
    return InvalidArgumentError("directory '" + normalized +
                                "' is not empty");
  }
  if (recursive) {
    for (const std::string& file : listing.files) {
      DPFS_RETURN_IF_ERROR(DeleteFile(normalized + "/" + file));
    }
    for (const std::string& dir : listing.directories) {
      DPFS_RETURN_IF_ERROR(RemoveDirectory(normalized + "/" + dir, true));
    }
  }

  const auto [parent, name] = SplitPath(normalized);
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet parent_row,
      db_->Execute("SELECT sub_dirs FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(parent)));
  if (parent_row.empty()) {
    return InternalError("parent row missing for '" + normalized + "'");
  }
  DPFS_ASSIGN_OR_RETURN(const std::string sub_dirs,
                        parent_row.GetText(0, "sub_dirs"));
  std::vector<std::string> names = DecodeNameList(sub_dirs);
  names.erase(std::remove(names.begin(), names.end(), name), names.end());

  Transaction txn(*db_);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("UPDATE DPFS_DIRECTORY SET sub_dirs = " +
                   Quote(EncodeNameList(names)) + " WHERE main_dir = " +
                   Quote(parent))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(normalized))
          .status());
  return txn.Commit();
}

Status MetadataManager::LinkFileIntoDirectory(const std::string& parent,
                                              const std::string& name) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet parent_row,
      db_->Execute("SELECT files FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(parent)));
  if (parent_row.empty()) {
    return NotFoundError("parent directory '" + parent + "' does not exist");
  }
  DPFS_ASSIGN_OR_RETURN(const std::string files,
                        parent_row.GetText(0, "files"));
  std::vector<std::string> names = DecodeNameList(files);
  names.push_back(name);
  return db_
      ->Execute("UPDATE DPFS_DIRECTORY SET files = " +
                Quote(EncodeNameList(names)) + " WHERE main_dir = " +
                Quote(parent))
      .status();
}

Status MetadataManager::UnlinkFileFromDirectory(const std::string& parent,
                                                const std::string& name) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet parent_row,
      db_->Execute("SELECT files FROM DPFS_DIRECTORY WHERE main_dir = " +
                   Quote(parent)));
  if (parent_row.empty()) return Status::Ok();
  DPFS_ASSIGN_OR_RETURN(const std::string files,
                        parent_row.GetText(0, "files"));
  std::vector<std::string> names = DecodeNameList(files);
  names.erase(std::remove(names.begin(), names.end(), name), names.end());
  return db_
      ->Execute("UPDATE DPFS_DIRECTORY SET files = " +
                Quote(EncodeNameList(names)) + " WHERE main_dir = " +
                Quote(parent))
      .status();
}

// ---------------------------------------------------------------------------
// Files

Status MetadataManager::CreateFile(
    const FileMeta& meta, const std::vector<std::string>& server_names,
    const layout::BrickDistribution& distribution) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized,
                        NormalizePath(meta.path));
  const auto [parent, name] = SplitPath(normalized);
  if (name.empty()) return InvalidArgumentError("file path must name a file");
  DPFS_ASSIGN_OR_RETURN(const bool parent_exists, DirectoryExists(parent));
  if (!parent_exists) {
    return NotFoundError("parent directory '" + parent + "' does not exist");
  }
  DPFS_ASSIGN_OR_RETURN(const bool exists, FileExists(normalized));
  if (exists) {
    return AlreadyExistsError("file '" + normalized + "' exists");
  }
  if (server_names.size() != distribution.num_servers()) {
    return InvalidArgumentError(
        "server name count does not match distribution");
  }

  Transaction txn(*db_);
  DPFS_RETURN_IF_ERROR(txn.Begin());

  const std::string pattern_sql =
      meta.pattern.has_value() ? Quote(meta.pattern->ToString()) : "NULL";
  const std::string sql_attr =
      "INSERT INTO DPFS_FILE_ATTR VALUES (" + Quote(normalized) + ", " +
      Quote(meta.owner) + ", " + std::to_string(meta.permission) + ", " +
      std::to_string(meta.size_bytes) + ", " +
      Quote(std::string(layout::FileLevelName(meta.level))) + ", " +
      std::to_string(meta.element_size) + ", " +
      std::to_string(meta.array_shape.size()) + ", " +
      Quote(EncodeShape(meta.array_shape)) + ", " +
      std::to_string(meta.brick_bytes) + ", " +
      Quote(EncodeShape(meta.brick_shape)) + ", " + pattern_sql + ", " +
      Quote(EncodeShape(meta.chunk_grid)) + ")";
  DPFS_RETURN_IF_ERROR(db_->Execute(sql_attr).status());

  for (std::uint32_t server = 0; server < distribution.num_servers();
       ++server) {
    const std::string sql_dist =
        "INSERT INTO DPFS_FILE_DISTRIBUTION VALUES (" + Quote(normalized) +
        ", " + Quote(server_names[server]) + ", " + std::to_string(server) +
        ", " +
        Quote(layout::BrickDistribution::EncodeBrickList(
            distribution.bricks_on(server))) +
        ")";
    DPFS_RETURN_IF_ERROR(db_->Execute(sql_dist).status());
  }

  DPFS_RETURN_IF_ERROR(LinkFileIntoDirectory(parent, name));
  return txn.Commit();
}

Result<FileRecord> MetadataManager::LookupFile(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet attr,
      db_->Execute("SELECT * FROM DPFS_FILE_ATTR WHERE filename = " +
                   Quote(normalized)));
  if (attr.empty()) {
    return NotFoundError("no such file '" + normalized + "'");
  }

  FileRecord record;
  FileMeta& meta = record.meta;
  meta.path = normalized;
  DPFS_ASSIGN_OR_RETURN(meta.owner, attr.GetText(0, "owner"));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t permission,
                        attr.GetInt(0, "permission"));
  meta.permission = static_cast<std::uint32_t>(permission);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t size, attr.GetInt(0, "size"));
  meta.size_bytes = static_cast<std::uint64_t>(size);
  DPFS_ASSIGN_OR_RETURN(const std::string level_name,
                        attr.GetText(0, "filelevel"));
  DPFS_ASSIGN_OR_RETURN(meta.level, layout::ParseFileLevel(level_name));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t element_size,
                        attr.GetInt(0, "elemsize"));
  meta.element_size = static_cast<std::uint64_t>(element_size);
  DPFS_ASSIGN_OR_RETURN(const std::string dimsize, attr.GetText(0, "dimsize"));
  DPFS_ASSIGN_OR_RETURN(meta.array_shape, DecodeShape(dimsize));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t brick_bytes,
                        attr.GetInt(0, "brickbytes"));
  meta.brick_bytes = static_cast<std::uint64_t>(brick_bytes);
  DPFS_ASSIGN_OR_RETURN(const std::string stripe, attr.GetText(0, "stripe"));
  DPFS_ASSIGN_OR_RETURN(meta.brick_shape, DecodeShape(stripe));
  DPFS_ASSIGN_OR_RETURN(const metadb::Value pattern_value,
                        attr.GetValue(0, "pattern"));
  if (!pattern_value.is_null()) {
    DPFS_ASSIGN_OR_RETURN(const layout::HpfPattern pattern,
                          layout::HpfPattern::Parse(pattern_value.AsText()));
    meta.pattern = pattern;
  }
  DPFS_ASSIGN_OR_RETURN(const std::string grid, attr.GetText(0, "grid"));
  DPFS_ASSIGN_OR_RETURN(meta.chunk_grid, DecodeShape(grid));

  // Distribution rows, ordered by server_index.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet dist,
      db_->Execute(
          "SELECT server, server_index, bricklist FROM DPFS_FILE_DISTRIBUTION "
          "WHERE filename = " +
          Quote(normalized) + " ORDER BY server_index"));
  if (dist.empty()) {
    return DataLossError("file '" + normalized +
                         "' has no distribution rows");
  }
  std::vector<std::vector<layout::BrickId>> bricklists(dist.size());
  record.servers.resize(dist.size());
  for (std::size_t row = 0; row < dist.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t index,
                          dist.GetInt(row, "server_index"));
    if (index < 0 || static_cast<std::size_t>(index) >= dist.size()) {
      return DataLossError("bad server_index in distribution");
    }
    DPFS_ASSIGN_OR_RETURN(const std::string server_name,
                          dist.GetText(row, "server"));
    DPFS_ASSIGN_OR_RETURN(record.servers[index],
                          LookupServer(server_name));
    DPFS_ASSIGN_OR_RETURN(const std::string bricklist,
                          dist.GetText(row, "bricklist"));
    DPFS_ASSIGN_OR_RETURN(
        bricklists[index],
        layout::BrickDistribution::DecodeBrickList(bricklist));
  }
  DPFS_ASSIGN_OR_RETURN(const layout::BrickMap map, meta.MakeBrickMap());
  DPFS_ASSIGN_OR_RETURN(record.distribution,
                        layout::BrickDistribution::FromBrickLists(
                            map.num_bricks(), std::move(bricklists)));
  return record;
}

Status MetadataManager::UpdateFileSize(const std::string& path,
                                       std::uint64_t size_bytes) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  // A file's brick count is fixed at creation (the bricklists are already
  // placed); the logical size may only move within the striped capacity.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet attr,
      db_->Execute(
          "SELECT size, filelevel, brickbytes FROM DPFS_FILE_ATTR "
          "WHERE filename = " +
          Quote(normalized)));
  if (attr.empty()) return NotFoundError("no such file '" + normalized + "'");
  DPFS_ASSIGN_OR_RETURN(const std::string level, attr.GetText(0, "filelevel"));
  if (level == "linear") {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t old_size, attr.GetInt(0, "size"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t brick_bytes,
                          attr.GetInt(0, "brickbytes"));
    const std::uint64_t capacity =
        layout::CeilDiv(static_cast<std::uint64_t>(old_size),
                        static_cast<std::uint64_t>(brick_bytes)) *
        static_cast<std::uint64_t>(brick_bytes);
    if (size_bytes > capacity) {
      return OutOfRangeError("new size " + std::to_string(size_bytes) +
                             " exceeds striped capacity " +
                             std::to_string(capacity));
    }
  }
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("UPDATE DPFS_FILE_ATTR SET size = " +
                   std::to_string(size_bytes) + " WHERE filename = " +
                   Quote(normalized)));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::SetPermission(const std::string& path,
                                      std::uint32_t permission) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("UPDATE DPFS_FILE_ATTR SET permission = " +
                   std::to_string(permission) + " WHERE filename = " +
                   Quote(normalized)));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::SetOwner(const std::string& path,
                                 const std::string& owner) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      db_->Execute("UPDATE DPFS_FILE_ATTR SET owner = " + Quote(owner) +
                   " WHERE filename = " + Quote(normalized)));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::RenameFile(const std::string& from,
                                   const std::string& to) {
  DPFS_ASSIGN_OR_RETURN(const std::string src, NormalizePath(from));
  DPFS_ASSIGN_OR_RETURN(const std::string dst, NormalizePath(to));
  if (src == dst) return Status::Ok();
  DPFS_ASSIGN_OR_RETURN(const bool src_exists, FileExists(src));
  if (!src_exists) return NotFoundError("no such file '" + src + "'");
  DPFS_ASSIGN_OR_RETURN(const bool dst_exists, FileExists(dst));
  if (dst_exists) return AlreadyExistsError("file '" + dst + "' exists");
  DPFS_ASSIGN_OR_RETURN(const bool dst_is_dir, DirectoryExists(dst));
  if (dst_is_dir) return AlreadyExistsError("'" + dst + "' is a directory");
  const auto [src_parent, src_name] = SplitPath(src);
  const auto [dst_parent, dst_name] = SplitPath(dst);
  if (dst_name.empty()) {
    return InvalidArgumentError("rename target must name a file");
  }
  DPFS_ASSIGN_OR_RETURN(const bool parent_exists,
                        DirectoryExists(dst_parent));
  if (!parent_exists) {
    return NotFoundError("target directory '" + dst_parent +
                         "' does not exist");
  }

  Transaction txn(*db_);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("UPDATE DPFS_FILE_ATTR SET filename = " + Quote(dst) +
                   " WHERE filename = " + Quote(src))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("UPDATE DPFS_FILE_DISTRIBUTION SET filename = " +
                   Quote(dst) + " WHERE filename = " + Quote(src))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("UPDATE DPFS_ACCESS_LOG SET filename = " + Quote(dst) +
                   " WHERE filename = " + Quote(src))
          .status());
  DPFS_RETURN_IF_ERROR(UnlinkFileFromDirectory(src_parent, src_name));
  DPFS_RETURN_IF_ERROR(LinkFileIntoDirectory(dst_parent, dst_name));
  return txn.Commit();
}

Status MetadataManager::DeleteFile(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(const bool exists, FileExists(normalized));
  if (!exists) return NotFoundError("no such file '" + normalized + "'");
  const auto [parent, name] = SplitPath(normalized);

  Transaction txn(*db_);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM DPFS_FILE_ATTR WHERE filename = " +
                   Quote(normalized))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM DPFS_FILE_DISTRIBUTION WHERE filename = " +
                   Quote(normalized))
          .status());
  DPFS_RETURN_IF_ERROR(
      db_->Execute("DELETE FROM DPFS_ACCESS_LOG WHERE filename = " +
                   Quote(normalized))
          .status());
  DPFS_RETURN_IF_ERROR(UnlinkFileFromDirectory(parent, name));
  return txn.Commit();
}

}  // namespace dpfs::client
