#include "client/metadata.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "metadb/predicate.h"
#include "metadb/sql_ast.h"

namespace dpfs::client {
namespace {

constexpr const char* kServerTable = "DPFS_SERVER";
constexpr const char* kDistTable = "DPFS_FILE_DISTRIBUTION";
constexpr const char* kDirTable = "DPFS_DIRECTORY";
constexpr const char* kAttrTable = "DPFS_FILE_ATTR";
constexpr const char* kAccessTable = "DPFS_ACCESS_LOG";
constexpr const char* kIntentTable = "DPFS_INTENT";

/// Separator between serialized statements in a rename intent payload;
/// ASCII record separator, which cannot appear in a normalized path.
constexpr char kPayloadSep = '\x1e';

/// Fires between the shard commits of a cross-shard mutation
/// (docs/FAULT_INJECTION.md, site `metadb.shard_commit`): the home shard has
/// committed its transaction + intent record, follower shards may or may not
/// have applied. The chaos test kills the protocol here and asserts the
/// repair pass in Attach rolls the mutation forward.
#define DPFS_SHARD_COMMIT_GATE() DPFS_FAILPOINT_RETURN("metadb.shard_commit")

/// SQL string literal with '' escaping (intent payloads only; the hot paths
/// below bypass SQL entirely).
std::string Quote(std::string_view text) {
  std::string out = "'";
  for (const char c : text) {
    out += c;
    if (c == '\'') out += '\'';
  }
  out += "'";
  return out;
}

std::string ValueSqlLiteral(const metadb::Value& value) {
  switch (value.type()) {
    case metadb::ValueType::kNull:
      return "NULL";
    case metadb::ValueType::kInt:
      return std::to_string(value.AsInt());
    case metadb::ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value.AsDouble());
      std::string text = buf;
      if (text.find_first_of(".eE") == std::string::npos) text += ".0";
      return text;
    }
    case metadb::ValueType::kText:
      return Quote(value.AsText());
  }
  return "NULL";
}

std::string EncodeShape(const layout::Shape& shape) {
  std::string out;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (d > 0) out += ',';
    out += std::to_string(shape[d]);
  }
  return out;
}

Result<layout::Shape> DecodeShape(std::string_view text) {
  layout::Shape shape;
  if (TrimWhitespace(text).empty()) return shape;
  for (const std::string& token : SplitString(text, ',')) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t v, ParseInt64(token));
    if (v <= 0) return InvalidArgumentError("bad shape component in metadata");
    shape.push_back(static_cast<std::uint64_t>(v));
  }
  return shape;
}

/// Comma-separated name list used by DPFS_DIRECTORY columns.
std::vector<std::string> DecodeNameList(std::string_view text) {
  std::vector<std::string> names;
  if (TrimWhitespace(text).empty()) return names;
  for (const std::string& token : SplitString(text, ',')) {
    if (!token.empty()) names.push_back(token);
  }
  return names;
}

std::string EncodeNameList(const std::vector<std::string>& names) {
  return JoinStrings(names, ",");
}

// ---------------------------------------------------------------------------
// Hot statement cache: the manager issues ~10 fixed parameterized statement
// shapes; their ASTs are built once and cloned per call (a SelectStmt copy
// shares the immutable ExprPtr nodes), so the steady-state metadata path
// never touches the SQL lexer/parser. The win shows up in metadb.execute_us.

metadb::SelectStmt MakeSelect(const char* table,
                              std::vector<std::string> columns,
                              std::optional<metadb::OrderBy> order = {}) {
  metadb::SelectStmt stmt;
  stmt.table = table;
  stmt.columns = std::move(columns);
  stmt.order_by = std::move(order);
  return stmt;
}

struct HotStatements {
  metadb::ExprPtr filename_col = metadb::MakeColumn("filename");
  metadb::ExprPtr main_dir_col = metadb::MakeColumn("main_dir");
  metadb::ExprPtr server_name_col = metadb::MakeColumn("server_name");
  metadb::ExprPtr intent_src_col = metadb::MakeColumn("src");

  metadb::SelectStmt attr_all = MakeSelect(kAttrTable, {});
  metadb::SelectStmt attr_exists = MakeSelect(kAttrTable, {"filename"});
  metadb::SelectStmt attr_size =
      MakeSelect(kAttrTable, {"size", "filelevel", "brickbytes"});
  metadb::SelectStmt dist_by_file =
      MakeSelect(kDistTable, {"server", "server_index", "bricklist", "replica"},
                 metadb::OrderBy{"server_index", false});
  metadb::SelectStmt dist_all = MakeSelect(kDistTable, {});
  metadb::SelectStmt access_all = MakeSelect(kAccessTable, {});
  metadb::SelectStmt access_by_file =
      MakeSelect(kAccessTable, {"requests", "transfer", "useful"});
  metadb::SelectStmt server_by_name = MakeSelect(kServerTable, {});
  metadb::SelectStmt servers_ordered =
      MakeSelect(kServerTable, {}, metadb::OrderBy{"server_name", false});
  metadb::SelectStmt dir_exists = MakeSelect(kDirTable, {"main_dir"});
  metadb::SelectStmt dir_lists = MakeSelect(kDirTable, {"sub_dirs", "files"});
  metadb::SelectStmt dir_files = MakeSelect(kDirTable, {"files"});
  metadb::SelectStmt dir_subdirs = MakeSelect(kDirTable, {"sub_dirs"});
  metadb::SelectStmt intent_all = MakeSelect(kIntentTable, {});
};

const HotStatements& Hot() {
  static const HotStatements hot;
  return hot;
}

Result<metadb::ResultSet> SelectEq(metadb::Database& db,
                                   const metadb::SelectStmt& tpl,
                                   const metadb::ExprPtr& column,
                                   std::string_view key) {
  metadb::SelectStmt stmt = tpl;
  stmt.where = metadb::MakeCompare(metadb::CompareOp::kEq, column,
                                   metadb::MakeLiteral(std::string(key)));
  return db.ExecuteStatement(std::move(stmt));
}

Result<metadb::ResultSet> SelectAll(metadb::Database& db,
                                    const metadb::SelectStmt& tpl) {
  return db.ExecuteStatement(tpl);
}

Status InsertRow(metadb::Database& db, const char* table,
                 std::vector<metadb::Value> row) {
  metadb::InsertStmt stmt;
  stmt.table = table;
  stmt.rows.push_back(std::move(row));
  return db.ExecuteStatement(std::move(stmt)).status();
}

Result<metadb::ResultSet> DeleteEq(metadb::Database& db, const char* table,
                                   const metadb::ExprPtr& column,
                                   std::string_view key) {
  metadb::DeleteStmt stmt;
  stmt.table = table;
  stmt.where = metadb::MakeCompare(metadb::CompareOp::kEq, column,
                                   metadb::MakeLiteral(std::string(key)));
  return db.ExecuteStatement(std::move(stmt));
}

Result<metadb::ResultSet> UpdateEq(
    metadb::Database& db, const char* table,
    std::vector<std::pair<std::string, metadb::Value>> assignments,
    const metadb::ExprPtr& column, std::string_view key) {
  metadb::UpdateStmt stmt;
  stmt.table = table;
  stmt.assignments = std::move(assignments);
  stmt.where = metadb::MakeCompare(metadb::CompareOp::kEq, column,
                                   metadb::MakeLiteral(std::string(key)));
  return db.ExecuteStatement(std::move(stmt));
}

/// RAII transaction guard: rolls back unless Commit() succeeded.
class Transaction {
 public:
  explicit Transaction(metadb::Database& db) : db_(db) {}
  Status Begin() {
    return db_.ExecuteStatement(metadb::BeginStmt{}).status();
  }
  Status Commit() {
    committed_ = true;
    return db_.ExecuteStatement(metadb::CommitStmt{}).status();
  }
  ~Transaction() {
    // dpfs:unchecked(destructor rollback on the error path: the statement
    // failure already propagated; rollback of an open txn cannot fail in
    // metadb and a throw/return is impossible here anyway)
    if (!committed_) (void)db_.ExecuteStatement(metadb::RollbackStmt{});
  }

 private:
  metadb::Database& db_;
  bool committed_ = false;
};

Result<ServerInfo> ServerFromRow(const metadb::ResultSet& result,
                                 std::size_t row) {
  ServerInfo server;
  DPFS_ASSIGN_OR_RETURN(server.name, result.GetText(row, "server_name"));
  DPFS_ASSIGN_OR_RETURN(server.endpoint.host, result.GetText(row, "host"));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t port, result.GetInt(row, "port"));
  server.endpoint.port = static_cast<std::uint16_t>(port);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t capacity,
                        result.GetInt(row, "capacity"));
  server.capacity_bytes = static_cast<std::uint64_t>(capacity);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t performance,
                        result.GetInt(row, "performance"));
  server.performance = static_cast<std::uint32_t>(performance);
  return server;
}

Result<ServerInfo> ServerByName(metadb::Database& db,
                                const std::string& name) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      SelectEq(db, Hot().server_by_name, Hot().server_name_col, name));
  if (result.empty()) return NotFoundError("no server '" + name + "'");
  return ServerFromRow(result, 0);
}

Result<bool> FileExistsIn(metadb::Database& db, const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      SelectEq(db, Hot().attr_exists, Hot().filename_col, path));
  return !result.empty();
}

Result<bool> DirExistsIn(metadb::Database& db, const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      SelectEq(db, Hot().dir_exists, Hot().main_dir_col, path));
  return !result.empty();
}

/// Serializes a file's rows on its (old) home shard as INSERT statements
/// with the filename already rewritten to `dst` — the rename intent payload
/// applied on the destination home shard.
Result<std::string> BuildRenamePayload(metadb::Database& db,
                                       const std::string& src,
                                       const std::string& dst) {
  const HotStatements& hot = Hot();
  struct TableSelect {
    const char* table;
    const metadb::SelectStmt* all;
  };
  const TableSelect tables[] = {{kAttrTable, &hot.attr_all},
                                {kDistTable, &hot.dist_all},
                                {kAccessTable, &hot.access_all}};
  std::vector<std::string> statements;
  for (const TableSelect& t : tables) {
    DPFS_ASSIGN_OR_RETURN(const metadb::ResultSet rows,
                          SelectEq(db, *t.all, hot.filename_col, src));
    for (const metadb::Row& row : rows.rows) {
      std::string sql = "INSERT INTO ";
      sql += t.table;
      sql += " VALUES (";
      for (std::size_t col = 0; col < row.size(); ++col) {
        if (col > 0) sql += ", ";
        // Column 0 is `filename` in all three tables.
        sql += col == 0 ? Quote(dst) : ValueSqlLiteral(row[col]);
      }
      sql += ")";
      statements.push_back(std::move(sql));
    }
  }
  return JoinStrings(statements, std::string(1, kPayloadSep));
}

}  // namespace

Result<layout::BrickMap> FileMeta::MakeBrickMap() const {
  switch (level) {
    case layout::FileLevel::kLinear:
      if (!array_shape.empty()) {
        return layout::BrickMap::LinearArray(array_shape, element_size,
                                             brick_bytes);
      }
      return layout::BrickMap::Linear(size_bytes, brick_bytes);
    case layout::FileLevel::kMultidim:
      return layout::BrickMap::Multidim(array_shape, brick_shape,
                                        element_size);
    case layout::FileLevel::kArray: {
      if (!pattern.has_value()) {
        return InternalError("array-level file missing HPF pattern");
      }
      layout::ProcessGrid grid;
      grid.grid = chunk_grid;
      return layout::BrickMap::Array(array_shape, *pattern, grid,
                                     element_size);
    }
  }
  return InternalError("bad file level in metadata");
}

// ---------------------------------------------------------------------------
// Shard locking

/// Locks the transaction mutex of every involved shard in ascending index
/// order (a total order, so concurrent multi-shard mutations cannot
/// deadlock) and releases in reverse. Manual lock()/unlock() because the
/// shard set is dynamic; the annotations cannot track a runtime-indexed
/// mutex vector.
class MetadataManager::ShardLocks {
 public:
  // dpfs:no-tsa(runtime-indexed mutex vector: the analysis cannot name
  // shard_mu_[i] capabilities; the sorted ascending acquisition below is
  // the manual discipline that replaces it)
  ShardLocks(MetadataManager& manager, std::vector<std::size_t> shards)
      DPFS_NO_THREAD_SAFETY_ANALYSIS : manager_(manager),
                                       shards_(std::move(shards)) {
    std::sort(shards_.begin(), shards_.end());
    shards_.erase(std::unique(shards_.begin(), shards_.end()),
                  shards_.end());
    for (const std::size_t shard : shards_) {
      // dpfs:lock-order-ok(shard_mu_ instances are taken in ascending
      // shard index over a sorted deduplicated set — a total order, so
      // concurrent multi-shard mutations cannot deadlock)
      manager_.shard_mu_[shard]->lock();
    }
  }
  // dpfs:no-tsa(release-only path of the runtime-indexed acquisition
  // above, in exact reverse order)
  ~ShardLocks() DPFS_NO_THREAD_SAFETY_ANALYSIS {
    for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) {
      manager_.shard_mu_[*it]->unlock();
    }
  }
  ShardLocks(const ShardLocks&) = delete;
  ShardLocks& operator=(const ShardLocks&) = delete;

 private:
  MetadataManager& manager_;
  std::vector<std::size_t> shards_;
};

// ---------------------------------------------------------------------------
// Attach / schema

MetadataManager::MetadataManager(std::shared_ptr<metadb::ShardedDatabase> db)
    : db_(std::move(db)) {
  shard_mu_.reserve(db_->num_shards());
  for (std::size_t i = 0; i < db_->num_shards(); ++i) {
    shard_mu_.push_back(std::make_unique<Mutex>());
  }
}

Result<std::unique_ptr<MetadataManager>> MetadataManager::Attach(
    std::shared_ptr<metadb::ShardedDatabase> db) {
  std::unique_ptr<MetadataManager> manager(
      new MetadataManager(std::move(db)));
  DPFS_RETURN_IF_ERROR(manager->EnsureTables());
  if (manager->db_->num_shards() > 1) {
    DPFS_RETURN_IF_ERROR(manager->RepairIntents());
  }
  return manager;
}

Result<std::unique_ptr<MetadataManager>> MetadataManager::Attach(
    std::shared_ptr<metadb::Database> db) {
  return Attach(std::shared_ptr<metadb::ShardedDatabase>(
      metadb::ShardedDatabase::Adopt(std::move(db))));
}

Status MetadataManager::EnsureTables() {
  static constexpr const char* kDdl[] = {
      "CREATE TABLE IF NOT EXISTS DPFS_SERVER ("
      "  server_name TEXT PRIMARY KEY, host TEXT, port INT,"
      "  capacity INT, performance INT)",
      "CREATE TABLE IF NOT EXISTS DPFS_FILE_DISTRIBUTION ("
      "  filename TEXT, server TEXT, server_index INT, bricklist TEXT,"
      "  replica INT)",
      "CREATE TABLE IF NOT EXISTS DPFS_DIRECTORY ("
      "  main_dir TEXT PRIMARY KEY, sub_dirs TEXT, files TEXT)",
      "CREATE TABLE IF NOT EXISTS DPFS_FILE_ATTR ("
      "  filename TEXT PRIMARY KEY, owner TEXT, permission INT, size INT,"
      "  filelevel TEXT, elemsize INT, dims INT, dimsize TEXT,"
      "  brickbytes INT, stripe TEXT, pattern TEXT, grid TEXT)",
      // Extension: per-access observations feeding level advice.
      "CREATE TABLE IF NOT EXISTS DPFS_ACCESS_LOG ("
      "  filename TEXT, direction TEXT, requests INT,"
      "  transfer INT, useful INT)",
  };
  // Pending cross-shard mutations (docs/METADATA_SCHEMA.md "Sharding");
  // only exists on sharded databases so the single-shard on-disk layout
  // stays byte-identical to the unsharded engine.
  static constexpr const char* kIntentDdl =
      "CREATE TABLE IF NOT EXISTS DPFS_INTENT ("
      "  src TEXT PRIMARY KEY, op TEXT, dst TEXT, payload TEXT)";

  for (std::size_t i = 0; i < db_->num_shards(); ++i) {
    metadb::Database& shard = Shard(i);
    for (const char* ddl : kDdl) {
      DPFS_RETURN_IF_ERROR(shard.Execute(ddl).status());
    }
    DPFS_RETURN_IF_ERROR(MigrateDistributionTable(shard));
    if (db_->num_shards() > 1) {
      DPFS_RETURN_IF_ERROR(shard.Execute(kIntentDdl).status());
    }
    // Distribution rows are keyed by filename (one row per server per
    // file); index them so DPFS-Open's lookup is a probe, not a scan. Same
    // for the access log's per-file summaries.
    DPFS_RETURN_IF_ERROR(shard.CreateIndex(kDistTable, "filename"));
    DPFS_RETURN_IF_ERROR(shard.CreateIndex(kAccessTable, "filename"));
  }

  // The root directory always exists (on its home shard).
  metadb::Database& root_shard = Shard(ShardOf("/"));
  DPFS_ASSIGN_OR_RETURN(const bool root_exists,
                        DirExistsIn(root_shard, "/"));
  if (!root_exists) {
    DPFS_RETURN_IF_ERROR(InsertRow(root_shard, kDirTable, {"/", "", ""}));
  }
  return Status::Ok();
}

Status MetadataManager::MigrateDistributionTable(metadb::Database& shard) {
  DPFS_ASSIGN_OR_RETURN(const metadb::ResultSet probe,
                        SelectAll(shard, Hot().dist_all));
  for (const std::string& column : probe.columns) {
    if (EqualsIgnoreCase(column, "replica")) return Status::Ok();
  }
  // Pre-replication 4-column table: rebuild it with every existing row as
  // replica rank 0. DDL participates in transactions (undo restores the
  // dropped table), so a crash mid-migration leaves the old schema intact.
  Transaction txn(shard);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  DPFS_RETURN_IF_ERROR(
      shard.Execute("DROP TABLE DPFS_FILE_DISTRIBUTION").status());
  DPFS_RETURN_IF_ERROR(
      shard
          .Execute("CREATE TABLE DPFS_FILE_DISTRIBUTION ("
                   "  filename TEXT, server TEXT, server_index INT,"
                   "  bricklist TEXT, replica INT)")
          .status());
  for (const metadb::Row& row : probe.rows) {
    std::vector<metadb::Value> widened = row;
    widened.emplace_back(static_cast<std::int64_t>(0));
    DPFS_RETURN_IF_ERROR(InsertRow(shard, kDistTable, std::move(widened)));
  }
  return txn.Commit();
}

// ---------------------------------------------------------------------------
// Cross-shard intent protocol

Status MetadataManager::UpsertIntent(metadb::Database& home,
                                     const std::string& op,
                                     const std::string& src,
                                     const std::string& dst,
                                     const std::string& payload) {
  // Delete-then-insert: a later mutation of the same path supersedes any
  // stale intent row (the PK is `src`).
  DPFS_RETURN_IF_ERROR(
      DeleteEq(home, kIntentTable, Hot().intent_src_col, src).status());
  return InsertRow(home, kIntentTable, {src, op, dst, payload});
}

Status MetadataManager::DeleteIntent(metadb::Database& home,
                                     const std::string& src) {
  return DeleteEq(home, kIntentTable, Hot().intent_src_col, src).status();
}

Status MetadataManager::LinkName(metadb::Database& db, const std::string& dir,
                                 const std::string& name, bool file) {
  const HotStatements& hot = Hot();
  const char* column = file ? "files" : "sub_dirs";
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet row,
      SelectEq(db, file ? hot.dir_files : hot.dir_subdirs, hot.main_dir_col,
               dir));
  if (row.empty()) return Status::Ok();
  DPFS_ASSIGN_OR_RETURN(const std::string list, row.GetText(0, column));
  std::vector<std::string> names = DecodeNameList(list);
  if (std::find(names.begin(), names.end(), name) != names.end()) {
    return Status::Ok();
  }
  names.push_back(name);
  return UpdateEq(db, kDirTable, {{column, EncodeNameList(names)}},
                  hot.main_dir_col, dir)
      .status();
}

Status MetadataManager::UnlinkName(metadb::Database& db,
                                   const std::string& dir,
                                   const std::string& name, bool file) {
  const HotStatements& hot = Hot();
  const char* column = file ? "files" : "sub_dirs";
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet row,
      SelectEq(db, file ? hot.dir_files : hot.dir_subdirs, hot.main_dir_col,
               dir));
  if (row.empty()) return Status::Ok();
  DPFS_ASSIGN_OR_RETURN(const std::string list, row.GetText(0, column));
  std::vector<std::string> names = DecodeNameList(list);
  const auto end = std::remove(names.begin(), names.end(), name);
  if (end == names.end()) return Status::Ok();
  names.erase(end, names.end());
  return UpdateEq(db, kDirTable, {{column, EncodeNameList(names)}},
                  hot.main_dir_col, dir)
      .status();
}

Status MetadataManager::ApplyRenamePayload(metadb::Database& db,
                                           const std::string& dst,
                                           const std::string& payload) {
  const HotStatements& hot = Hot();
  Transaction txn(db);
  DPFS_RETURN_IF_ERROR(txn.Begin());
  // Idempotent: clear any rows a partial earlier application left behind,
  // then re-insert from the payload.
  DPFS_RETURN_IF_ERROR(
      DeleteEq(db, kAttrTable, hot.filename_col, dst).status());
  DPFS_RETURN_IF_ERROR(
      DeleteEq(db, kDistTable, hot.filename_col, dst).status());
  DPFS_RETURN_IF_ERROR(
      DeleteEq(db, kAccessTable, hot.filename_col, dst).status());
  for (const std::string& sql : SplitString(payload, kPayloadSep)) {
    if (sql.empty()) continue;
    DPFS_RETURN_IF_ERROR(db.Execute(sql).status());
  }
  return txn.Commit();
}

Status MetadataManager::ApplyIntent(const std::string& op,
                                    const std::string& src,
                                    const std::string& dst,
                                    const std::string& payload) {
  const auto [src_parent, src_name] = SplitPath(src);
  metadb::Database& src_dir_shard = Shard(ShardOf(src_parent));
  if (op == "create") return LinkName(src_dir_shard, src_parent, src_name, true);
  if (op == "delete") {
    return UnlinkName(src_dir_shard, src_parent, src_name, true);
  }
  if (op == "mkdir") return LinkName(src_dir_shard, src_parent, src_name, false);
  if (op == "rmdir") {
    return UnlinkName(src_dir_shard, src_parent, src_name, false);
  }
  if (op == "rename") {
    if (!payload.empty()) {
      DPFS_RETURN_IF_ERROR(ApplyRenamePayload(Shard(ShardOf(dst)), dst,
                                              payload));
    }
    DPFS_RETURN_IF_ERROR(UnlinkName(src_dir_shard, src_parent, src_name, true));
    const auto [dst_parent, dst_name] = SplitPath(dst);
    return LinkName(Shard(ShardOf(dst_parent)), dst_parent, dst_name, true);
  }
  return InternalError("unknown intent op '" + op + "'");
}

Status MetadataManager::RepairIntents() {
  for (std::size_t i = 0; i < db_->num_shards(); ++i) {
    metadb::Database& shard = Shard(i);
    DPFS_ASSIGN_OR_RETURN(const metadb::ResultSet intents,
                          SelectAll(shard, Hot().intent_all));
    for (std::size_t row = 0; row < intents.size(); ++row) {
      DPFS_ASSIGN_OR_RETURN(const std::string op, intents.GetText(row, "op"));
      DPFS_ASSIGN_OR_RETURN(const std::string src,
                            intents.GetText(row, "src"));
      DPFS_ASSIGN_OR_RETURN(const std::string dst,
                            intents.GetText(row, "dst"));
      DPFS_ASSIGN_OR_RETURN(const std::string payload,
                            intents.GetText(row, "payload"));
      DPFS_RETURN_IF_ERROR(ApplyIntent(op, src, dst, payload));
      DPFS_RETURN_IF_ERROR(DeleteIntent(shard, src));
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Servers (replicated to every shard — lookups stay single-shard)

Status MetadataManager::RegisterServer(const ServerInfo& server) {
  std::vector<std::size_t> all(db_->num_shards());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  ShardLocks locks(*this, std::move(all));

  const auto row = [&server]() -> std::vector<metadb::Value> {
    return {server.name, server.endpoint.host,
            static_cast<std::int64_t>(server.endpoint.port),
            static_cast<std::int64_t>(server.capacity_bytes),
            static_cast<std::int64_t>(server.performance)};
  };
  // Shard 0 keeps the unsharded contract: a duplicate name is a primary-key
  // error. The replicas upsert — re-registration repair must be idempotent.
  DPFS_RETURN_IF_ERROR(InsertRow(Shard(0), kServerTable, row()));
  for (std::size_t i = 1; i < db_->num_shards(); ++i) {
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(i), kServerTable, Hot().server_name_col, server.name)
            .status());
    DPFS_RETURN_IF_ERROR(InsertRow(Shard(i), kServerTable, row()));
  }
  return Status::Ok();
}

Status MetadataManager::UnregisterServer(const std::string& name) {
  std::vector<std::size_t> all(db_->num_shards());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  ShardLocks locks(*this, std::move(all));

  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      DeleteEq(Shard(0), kServerTable, Hot().server_name_col, name));
  if (result.affected_rows == 0) {
    return NotFoundError("no server '" + name + "'");
  }
  for (std::size_t i = 1; i < db_->num_shards(); ++i) {
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(i), kServerTable, Hot().server_name_col, name)
            .status());
  }
  return Status::Ok();
}

Result<std::vector<ServerInfo>> MetadataManager::ListServers() {
  DPFS_ASSIGN_OR_RETURN(const metadb::ResultSet result,
                        SelectAll(Shard(0), Hot().servers_ordered));
  std::vector<ServerInfo> servers;
  servers.reserve(result.size());
  for (std::size_t row = 0; row < result.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(ServerInfo server, ServerFromRow(result, row));
    servers.push_back(std::move(server));
  }
  return servers;
}

Result<ServerInfo> MetadataManager::LookupServer(const std::string& name) {
  return ServerByName(Shard(0), name);
}

// ---------------------------------------------------------------------------
// Access log (extension; rows co-locate on the file's home shard)

Status MetadataManager::LogAccess(const std::string& path, bool is_write,
                                  std::uint64_t requests,
                                  std::uint64_t transfer_bytes,
                                  std::uint64_t useful_bytes) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const std::size_t home = ShardOf(normalized);
  ShardLocks locks(*this, {home});
  return InsertRow(Shard(home), kAccessTable,
                   {normalized, is_write ? "write" : "read",
                    static_cast<std::int64_t>(requests),
                    static_cast<std::int64_t>(transfer_bytes),
                    static_cast<std::int64_t>(useful_bytes)});
}

Result<MetadataManager::AccessSummary> MetadataManager::SummarizeAccess(
    const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet rows,
      SelectEq(Shard(ShardOf(normalized)), Hot().access_by_file,
               Hot().filename_col, normalized));
  AccessSummary summary;
  summary.accesses = rows.size();
  for (std::size_t row = 0; row < rows.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t requests,
                          rows.GetInt(row, "requests"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t transfer,
                          rows.GetInt(row, "transfer"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t useful,
                          rows.GetInt(row, "useful"));
    summary.requests += static_cast<std::uint64_t>(requests);
    summary.transfer_bytes += static_cast<std::uint64_t>(transfer);
    summary.useful_bytes += static_cast<std::uint64_t>(useful);
  }
  return summary;
}

Status MetadataManager::ClearAccessLog(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const std::size_t home = ShardOf(normalized);
  ShardLocks locks(*this, {home});
  return DeleteEq(Shard(home), kAccessTable, Hot().filename_col, normalized)
      .status();
}

// ---------------------------------------------------------------------------
// Directories

Result<bool> MetadataManager::DirectoryExists(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  return DirExistsIn(Shard(ShardOf(normalized)), normalized);
}

Result<bool> MetadataManager::FileExists(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  return FileExistsIn(Shard(ShardOf(normalized)), normalized);
}

Status MetadataManager::MakeDirectory(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (normalized == "/") return AlreadyExistsError("'/' already exists");
  const auto [parent, name] = SplitPath(normalized);

  const std::size_t home = ShardOf(normalized);
  const std::size_t parent_shard = ShardOf(parent);
  ShardLocks locks(*this, {home, parent_shard});

  DPFS_ASSIGN_OR_RETURN(const bool parent_exists,
                        DirExistsIn(Shard(parent_shard), parent));
  if (!parent_exists) {
    return NotFoundError("parent directory '" + parent + "' does not exist");
  }
  DPFS_ASSIGN_OR_RETURN(const bool exists,
                        DirExistsIn(Shard(home), normalized));
  if (exists) {
    return AlreadyExistsError("directory '" + normalized + "' exists");
  }
  DPFS_ASSIGN_OR_RETURN(const bool file_exists,
                        FileExistsIn(Shard(home), normalized));
  if (file_exists) {
    return AlreadyExistsError("'" + normalized + "' exists as a file");
  }

  if (home == parent_shard) {
    // §5: update the parent row's sub-dirs and insert a new row.
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(LinkName(Shard(parent_shard), parent, name, false));
    DPFS_RETURN_IF_ERROR(
        InsertRow(Shard(home), kDirTable, {normalized, "", ""}));
    return txn.Commit();
  }

  // Cross-shard: the directory's own row + intent commit on its home shard
  // first, then the parent link; a crash in between rolls forward on the
  // next Attach.
  {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(
        InsertRow(Shard(home), kDirTable, {normalized, "", ""}));
    DPFS_RETURN_IF_ERROR(
        UpsertIntent(Shard(home), "mkdir", normalized, "", ""));
    DPFS_RETURN_IF_ERROR(txn.Commit());
  }
  DPFS_SHARD_COMMIT_GATE();
  DPFS_RETURN_IF_ERROR(LinkName(Shard(parent_shard), parent, name, false));
  DPFS_SHARD_COMMIT_GATE();
  return DeleteIntent(Shard(home), normalized);
}

Result<MetadataManager::Listing> MetadataManager::ListDirectory(
    const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      SelectEq(Shard(ShardOf(normalized)), Hot().dir_lists,
               Hot().main_dir_col, normalized));
  if (result.empty()) {
    return NotFoundError("no such directory '" + normalized + "'");
  }
  Listing listing;
  DPFS_ASSIGN_OR_RETURN(const std::string sub_dirs,
                        result.GetText(0, "sub_dirs"));
  DPFS_ASSIGN_OR_RETURN(const std::string files, result.GetText(0, "files"));
  listing.directories = DecodeNameList(sub_dirs);
  listing.files = DecodeNameList(files);
  std::sort(listing.directories.begin(), listing.directories.end());
  std::sort(listing.files.begin(), listing.files.end());
  return listing;
}

Status MetadataManager::RemoveDirectory(const std::string& path,
                                        bool recursive) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  if (normalized == "/") {
    return InvalidArgumentError("cannot remove the root directory");
  }
  // Recursive deletion runs as an unlocked pre-pass: each child op takes
  // its own shard locks (the mutexes are not reentrant).
  DPFS_ASSIGN_OR_RETURN(const Listing listing, ListDirectory(normalized));
  if (!recursive && (!listing.directories.empty() || !listing.files.empty())) {
    return InvalidArgumentError("directory '" + normalized +
                                "' is not empty");
  }
  if (recursive) {
    for (const std::string& file : listing.files) {
      DPFS_RETURN_IF_ERROR(DeleteFile(normalized + "/" + file));
    }
    for (const std::string& dir : listing.directories) {
      DPFS_RETURN_IF_ERROR(RemoveDirectory(normalized + "/" + dir, true));
    }
  }

  const auto [parent, name] = SplitPath(normalized);
  const std::size_t home = ShardOf(normalized);
  const std::size_t parent_shard = ShardOf(parent);
  ShardLocks locks(*this, {home, parent_shard});

  // Re-validate under the locks: the directory must still exist and be
  // empty (a concurrent create may have raced the unlocked pre-pass).
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet row,
      SelectEq(Shard(home), Hot().dir_lists, Hot().main_dir_col,
               normalized));
  if (row.empty()) {
    return NotFoundError("no such directory '" + normalized + "'");
  }
  DPFS_ASSIGN_OR_RETURN(const std::string sub_dirs,
                        row.GetText(0, "sub_dirs"));
  DPFS_ASSIGN_OR_RETURN(const std::string files, row.GetText(0, "files"));
  if (!DecodeNameList(sub_dirs).empty() || !DecodeNameList(files).empty()) {
    return InvalidArgumentError("directory '" + normalized +
                                "' is not empty");
  }

  DPFS_ASSIGN_OR_RETURN(const bool parent_exists,
                        DirExistsIn(Shard(parent_shard), parent));
  if (!parent_exists) {
    return InternalError("parent row missing for '" + normalized + "'");
  }

  if (home == parent_shard) {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(UnlinkName(Shard(parent_shard), parent, name, false));
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(home), kDirTable, Hot().main_dir_col, normalized)
            .status());
    return txn.Commit();
  }

  {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(home), kDirTable, Hot().main_dir_col, normalized)
            .status());
    DPFS_RETURN_IF_ERROR(
        UpsertIntent(Shard(home), "rmdir", normalized, "", ""));
    DPFS_RETURN_IF_ERROR(txn.Commit());
  }
  DPFS_SHARD_COMMIT_GATE();
  DPFS_RETURN_IF_ERROR(UnlinkName(Shard(parent_shard), parent, name, false));
  DPFS_SHARD_COMMIT_GATE();
  return DeleteIntent(Shard(home), normalized);
}

// ---------------------------------------------------------------------------
// Files

Status MetadataManager::CreateFile(
    const FileMeta& meta, const std::vector<std::string>& server_names,
    const layout::BrickDistribution& distribution,
    const std::vector<layout::BrickDistribution>& replicas) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized,
                        NormalizePath(meta.path));
  const auto [parent, name] = SplitPath(normalized);
  if (name.empty()) return InvalidArgumentError("file path must name a file");

  const std::size_t home = ShardOf(normalized);
  const std::size_t parent_shard = ShardOf(parent);
  ShardLocks locks(*this, {home, parent_shard});

  DPFS_ASSIGN_OR_RETURN(const bool parent_exists,
                        DirExistsIn(Shard(parent_shard), parent));
  if (!parent_exists) {
    return NotFoundError("parent directory '" + parent + "' does not exist");
  }
  DPFS_ASSIGN_OR_RETURN(const bool exists,
                        FileExistsIn(Shard(home), normalized));
  if (exists) {
    return AlreadyExistsError("file '" + normalized + "' exists");
  }
  if (server_names.size() != distribution.num_servers()) {
    return InvalidArgumentError(
        "server name count does not match distribution");
  }
  for (const layout::BrickDistribution& replica : replicas) {
    if (replica.num_servers() != distribution.num_servers() ||
        replica.num_bricks() != distribution.num_bricks()) {
      return InvalidArgumentError(
          "replica rank disagrees with the primary distribution");
    }
  }

  std::vector<metadb::Value> attr_row = {
      normalized,
      meta.owner,
      static_cast<std::int64_t>(meta.permission),
      static_cast<std::int64_t>(meta.size_bytes),
      std::string(layout::FileLevelName(meta.level)),
      static_cast<std::int64_t>(meta.element_size),
      static_cast<std::int64_t>(meta.array_shape.size()),
      EncodeShape(meta.array_shape),
      static_cast<std::int64_t>(meta.brick_bytes),
      EncodeShape(meta.brick_shape),
      meta.pattern.has_value() ? metadb::Value(meta.pattern->ToString())
                               : metadb::Value::Null(),
      EncodeShape(meta.chunk_grid)};

  const auto insert_file_rows = [&]() -> Status {
    DPFS_RETURN_IF_ERROR(
        InsertRow(Shard(home), kAttrTable, std::move(attr_row)));
    for (std::uint32_t rank = 0; rank <= replicas.size(); ++rank) {
      const layout::BrickDistribution& rank_dist =
          rank == 0 ? distribution : replicas[rank - 1];
      for (std::uint32_t server = 0; server < rank_dist.num_servers();
           ++server) {
        DPFS_RETURN_IF_ERROR(InsertRow(
            Shard(home), kDistTable,
            {normalized, server_names[server],
             static_cast<std::int64_t>(server),
             layout::BrickDistribution::EncodeBrickList(
                 rank_dist.bricks_on(server)),
             static_cast<std::int64_t>(rank)}));
      }
    }
    return Status::Ok();
  };

  if (home == parent_shard) {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(insert_file_rows());
    DPFS_RETURN_IF_ERROR(LinkName(Shard(parent_shard), parent, name, true));
    return txn.Commit();
  }

  {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(insert_file_rows());
    DPFS_RETURN_IF_ERROR(
        UpsertIntent(Shard(home), "create", normalized, "", ""));
    DPFS_RETURN_IF_ERROR(txn.Commit());
  }
  DPFS_SHARD_COMMIT_GATE();
  DPFS_RETURN_IF_ERROR(LinkName(Shard(parent_shard), parent, name, true));
  DPFS_SHARD_COMMIT_GATE();
  return DeleteIntent(Shard(home), normalized);
}

Result<FileRecord> MetadataManager::LookupFile(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  metadb::Database& home = Shard(ShardOf(normalized));
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet attr,
      SelectEq(home, Hot().attr_all, Hot().filename_col, normalized));
  if (attr.empty()) {
    return NotFoundError("no such file '" + normalized + "'");
  }

  FileRecord record;
  FileMeta& meta = record.meta;
  meta.path = normalized;
  DPFS_ASSIGN_OR_RETURN(meta.owner, attr.GetText(0, "owner"));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t permission,
                        attr.GetInt(0, "permission"));
  meta.permission = static_cast<std::uint32_t>(permission);
  DPFS_ASSIGN_OR_RETURN(const std::int64_t size, attr.GetInt(0, "size"));
  meta.size_bytes = static_cast<std::uint64_t>(size);
  DPFS_ASSIGN_OR_RETURN(const std::string level_name,
                        attr.GetText(0, "filelevel"));
  DPFS_ASSIGN_OR_RETURN(meta.level, layout::ParseFileLevel(level_name));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t element_size,
                        attr.GetInt(0, "elemsize"));
  meta.element_size = static_cast<std::uint64_t>(element_size);
  DPFS_ASSIGN_OR_RETURN(const std::string dimsize, attr.GetText(0, "dimsize"));
  DPFS_ASSIGN_OR_RETURN(meta.array_shape, DecodeShape(dimsize));
  DPFS_ASSIGN_OR_RETURN(const std::int64_t brick_bytes,
                        attr.GetInt(0, "brickbytes"));
  meta.brick_bytes = static_cast<std::uint64_t>(brick_bytes);
  DPFS_ASSIGN_OR_RETURN(const std::string stripe, attr.GetText(0, "stripe"));
  DPFS_ASSIGN_OR_RETURN(meta.brick_shape, DecodeShape(stripe));
  DPFS_ASSIGN_OR_RETURN(const metadb::Value pattern_value,
                        attr.GetValue(0, "pattern"));
  if (!pattern_value.is_null()) {
    DPFS_ASSIGN_OR_RETURN(const layout::HpfPattern pattern,
                          layout::HpfPattern::Parse(pattern_value.AsText()));
    meta.pattern = pattern;
  }
  DPFS_ASSIGN_OR_RETURN(const std::string grid, attr.GetText(0, "grid"));
  DPFS_ASSIGN_OR_RETURN(meta.chunk_grid, DecodeShape(grid));

  // Distribution rows, ordered by server_index; DPFS_SERVER is replicated,
  // so the joined server rows come from the same (home) shard.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet dist,
      SelectEq(home, Hot().dist_by_file, Hot().filename_col, normalized));
  if (dist.empty()) {
    return DataLossError("file '" + normalized +
                         "' has no distribution rows");
  }
  // Rows are (server_index, replica rank) keyed; rank 0 is the paper's
  // distribution, higher ranks are replica placements (docs/REPLICATION.md).
  std::int64_t max_rank = 0;
  for (std::size_t row = 0; row < dist.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t rank,
                          dist.GetInt(row, "replica"));
    if (rank < 0) return DataLossError("negative replica rank in metadata");
    max_rank = std::max(max_rank, rank);
  }
  const std::size_t num_ranks = static_cast<std::size_t>(max_rank) + 1;
  if (dist.size() % num_ranks != 0) {
    return DataLossError("distribution rows do not cover every replica rank");
  }
  const std::size_t num_servers = dist.size() / num_ranks;
  std::vector<std::vector<std::vector<layout::BrickId>>> bricklists(
      num_ranks, std::vector<std::vector<layout::BrickId>>(num_servers));
  std::vector<std::vector<bool>> seen(num_ranks,
                                      std::vector<bool>(num_servers, false));
  record.servers.resize(num_servers);
  for (std::size_t row = 0; row < dist.size(); ++row) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t index,
                          dist.GetInt(row, "server_index"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t rank,
                          dist.GetInt(row, "replica"));
    if (index < 0 || static_cast<std::size_t>(index) >= num_servers) {
      return DataLossError("bad server_index in distribution");
    }
    if (seen[rank][index]) {
      return DataLossError("duplicate distribution row in metadata");
    }
    seen[rank][index] = true;
    if (rank == 0) {
      DPFS_ASSIGN_OR_RETURN(const std::string server_name,
                            dist.GetText(row, "server"));
      DPFS_ASSIGN_OR_RETURN(record.servers[index],
                            ServerByName(home, server_name));
    }
    DPFS_ASSIGN_OR_RETURN(const std::string bricklist,
                          dist.GetText(row, "bricklist"));
    DPFS_ASSIGN_OR_RETURN(
        bricklists[rank][index],
        layout::BrickDistribution::DecodeBrickList(bricklist));
  }
  DPFS_ASSIGN_OR_RETURN(const layout::BrickMap map, meta.MakeBrickMap());
  DPFS_ASSIGN_OR_RETURN(record.distribution,
                        layout::BrickDistribution::FromBrickLists(
                            map.num_bricks(), std::move(bricklists[0])));
  for (std::size_t rank = 1; rank < num_ranks; ++rank) {
    DPFS_ASSIGN_OR_RETURN(layout::BrickDistribution replica,
                          layout::BrickDistribution::FromBrickLists(
                              map.num_bricks(), std::move(bricklists[rank])));
    record.replicas.push_back(std::move(replica));
  }
  return record;
}

Status MetadataManager::UpdateFileSize(const std::string& path,
                                       std::uint64_t size_bytes) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const std::size_t home = ShardOf(normalized);
  ShardLocks locks(*this, {home});
  // A file's brick count is fixed at creation (the bricklists are already
  // placed); the logical size may only move within the striped capacity.
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet attr,
      SelectEq(Shard(home), Hot().attr_size, Hot().filename_col,
               normalized));
  if (attr.empty()) return NotFoundError("no such file '" + normalized + "'");
  DPFS_ASSIGN_OR_RETURN(const std::string level, attr.GetText(0, "filelevel"));
  if (level == "linear") {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t old_size, attr.GetInt(0, "size"));
    DPFS_ASSIGN_OR_RETURN(const std::int64_t brick_bytes,
                          attr.GetInt(0, "brickbytes"));
    const std::uint64_t capacity =
        layout::CeilDiv(static_cast<std::uint64_t>(old_size),
                        static_cast<std::uint64_t>(brick_bytes)) *
        static_cast<std::uint64_t>(brick_bytes);
    if (size_bytes > capacity) {
      return OutOfRangeError("new size " + std::to_string(size_bytes) +
                             " exceeds striped capacity " +
                             std::to_string(capacity));
    }
  }
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      UpdateEq(Shard(home), kAttrTable,
               {{"size", static_cast<std::int64_t>(size_bytes)}},
               Hot().filename_col, normalized));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::SetPermission(const std::string& path,
                                      std::uint32_t permission) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const std::size_t home = ShardOf(normalized);
  ShardLocks locks(*this, {home});
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      UpdateEq(Shard(home), kAttrTable,
               {{"permission", static_cast<std::int64_t>(permission)}},
               Hot().filename_col, normalized));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::SetOwner(const std::string& path,
                                 const std::string& owner) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const std::size_t home = ShardOf(normalized);
  ShardLocks locks(*this, {home});
  DPFS_ASSIGN_OR_RETURN(
      const metadb::ResultSet result,
      UpdateEq(Shard(home), kAttrTable, {{"owner", owner}},
               Hot().filename_col, normalized));
  if (result.affected_rows == 0) {
    return NotFoundError("no such file '" + normalized + "'");
  }
  return Status::Ok();
}

Status MetadataManager::RenameFile(const std::string& from,
                                   const std::string& to) {
  DPFS_ASSIGN_OR_RETURN(const std::string src, NormalizePath(from));
  DPFS_ASSIGN_OR_RETURN(const std::string dst, NormalizePath(to));
  if (src == dst) return Status::Ok();
  const auto [src_parent, src_name] = SplitPath(src);
  const auto [dst_parent, dst_name] = SplitPath(dst);

  const std::size_t hs = ShardOf(src);        // source rows' home
  const std::size_t hd = ShardOf(dst);        // destination rows' home
  const std::size_t ds = ShardOf(src_parent);  // source directory row
  const std::size_t dd = ShardOf(dst_parent);  // destination directory row
  ShardLocks locks(*this, {hs, hd, ds, dd});

  DPFS_ASSIGN_OR_RETURN(const bool src_exists, FileExistsIn(Shard(hs), src));
  if (!src_exists) return NotFoundError("no such file '" + src + "'");
  DPFS_ASSIGN_OR_RETURN(const bool dst_exists, FileExistsIn(Shard(hd), dst));
  if (dst_exists) return AlreadyExistsError("file '" + dst + "' exists");
  DPFS_ASSIGN_OR_RETURN(const bool dst_is_dir, DirExistsIn(Shard(hd), dst));
  if (dst_is_dir) return AlreadyExistsError("'" + dst + "' is a directory");
  if (dst_name.empty()) {
    return InvalidArgumentError("rename target must name a file");
  }
  DPFS_ASSIGN_OR_RETURN(const bool parent_exists,
                        DirExistsIn(Shard(dd), dst_parent));
  if (!parent_exists) {
    return NotFoundError("target directory '" + dst_parent +
                         "' does not exist");
  }

  const auto rename_rows_on = [&](metadb::Database& db) -> Status {
    DPFS_RETURN_IF_ERROR(UpdateEq(db, kAttrTable, {{"filename", dst}},
                                  Hot().filename_col, src)
                             .status());
    DPFS_RETURN_IF_ERROR(UpdateEq(db, kDistTable, {{"filename", dst}},
                                  Hot().filename_col, src)
                             .status());
    return UpdateEq(db, kAccessTable, {{"filename", dst}},
                    Hot().filename_col, src)
        .status();
  };

  if (hs == hd && hs == ds && hs == dd) {
    Transaction txn(Shard(hs));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(rename_rows_on(Shard(hs)));
    DPFS_RETURN_IF_ERROR(UnlinkName(Shard(ds), src_parent, src_name, true));
    DPFS_RETURN_IF_ERROR(LinkName(Shard(dd), dst_parent, dst_name, true));
    return txn.Commit();
  }

  // Cross-shard rename. When the file's home shard moves (hs != hd) the
  // rows travel inside the intent payload: the home transaction deletes
  // them and persists their serialized form, the destination shard
  // re-inserts them. Directory link/unlink roles on the home shard fold
  // into the same transaction; the rest replay on their own shards.
  std::string payload;
  if (hs != hd) {
    DPFS_ASSIGN_OR_RETURN(payload, BuildRenamePayload(Shard(hs), src, dst));
  }
  {
    Transaction txn(Shard(hs));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    if (hs == hd) {
      DPFS_RETURN_IF_ERROR(rename_rows_on(Shard(hs)));
    } else {
      DPFS_RETURN_IF_ERROR(
          DeleteEq(Shard(hs), kAttrTable, Hot().filename_col, src).status());
      DPFS_RETURN_IF_ERROR(
          DeleteEq(Shard(hs), kDistTable, Hot().filename_col, src).status());
      DPFS_RETURN_IF_ERROR(
          DeleteEq(Shard(hs), kAccessTable, Hot().filename_col, src)
              .status());
    }
    if (ds == hs) {
      DPFS_RETURN_IF_ERROR(UnlinkName(Shard(hs), src_parent, src_name, true));
    }
    if (dd == hs) {
      DPFS_RETURN_IF_ERROR(LinkName(Shard(hs), dst_parent, dst_name, true));
    }
    DPFS_RETURN_IF_ERROR(
        UpsertIntent(Shard(hs), "rename", src, dst, payload));
    DPFS_RETURN_IF_ERROR(txn.Commit());
  }

  std::vector<std::size_t> followers = {hd, ds, dd};
  std::sort(followers.begin(), followers.end());
  followers.erase(std::unique(followers.begin(), followers.end()),
                  followers.end());
  for (const std::size_t shard : followers) {
    if (shard == hs) continue;
    DPFS_SHARD_COMMIT_GATE();
    if (shard == hd && hs != hd) {
      DPFS_RETURN_IF_ERROR(ApplyRenamePayload(Shard(shard), dst, payload));
    }
    if (shard == ds) {
      DPFS_RETURN_IF_ERROR(
          UnlinkName(Shard(shard), src_parent, src_name, true));
    }
    if (shard == dd) {
      DPFS_RETURN_IF_ERROR(LinkName(Shard(shard), dst_parent, dst_name, true));
    }
  }
  DPFS_SHARD_COMMIT_GATE();
  return DeleteIntent(Shard(hs), src);
}

Status MetadataManager::DeleteFile(const std::string& path) {
  DPFS_ASSIGN_OR_RETURN(const std::string normalized, NormalizePath(path));
  const auto [parent, name] = SplitPath(normalized);
  const std::size_t home = ShardOf(normalized);
  const std::size_t parent_shard = ShardOf(parent);
  ShardLocks locks(*this, {home, parent_shard});

  DPFS_ASSIGN_OR_RETURN(const bool exists,
                        FileExistsIn(Shard(home), normalized));
  if (!exists) return NotFoundError("no such file '" + normalized + "'");

  const auto delete_file_rows = [&]() -> Status {
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(home), kAttrTable, Hot().filename_col, normalized)
            .status());
    DPFS_RETURN_IF_ERROR(
        DeleteEq(Shard(home), kDistTable, Hot().filename_col, normalized)
            .status());
    return DeleteEq(Shard(home), kAccessTable, Hot().filename_col,
                    normalized)
        .status();
  };

  if (home == parent_shard) {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(delete_file_rows());
    DPFS_RETURN_IF_ERROR(UnlinkName(Shard(parent_shard), parent, name, true));
    return txn.Commit();
  }

  {
    Transaction txn(Shard(home));
    DPFS_RETURN_IF_ERROR(txn.Begin());
    DPFS_RETURN_IF_ERROR(delete_file_rows());
    DPFS_RETURN_IF_ERROR(
        UpsertIntent(Shard(home), "delete", normalized, "", ""));
    DPFS_RETURN_IF_ERROR(txn.Commit());
  }
  DPFS_SHARD_COMMIT_GATE();
  DPFS_RETURN_IF_ERROR(UnlinkName(Shard(parent_shard), parent, name, true));
  DPFS_SHARD_COMMIT_GATE();
  return DeleteIntent(Shard(home), normalized);
}

}  // namespace dpfs::client
