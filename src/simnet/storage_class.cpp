#include "simnet/storage_class.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace dpfs::simnet {

double StorageClassModel::SoloBrickTime(std::uint64_t bytes) const noexcept {
  const double b = static_cast<double>(bytes);
  // request latency + disk service + reply transfer.
  return link_latency_s + disk_overhead_s + b / disk_bytes_per_s +
         link_latency_s + b / link_bytes_per_s;
}

StorageClassModel Class1() noexcept {
  StorageClassModel model;
  model.name = "class1";
  model.link_bytes_per_s = 11.0 * 1024 * 1024;  // Fast Ethernet, local
  model.link_latency_s = 0.3e-3;
  model.disk_bytes_per_s = 10.0 * 1024 * 1024;  // 2001 commodity IDE disk
  // Per-request cost: thread spawn + subfile open + seek (§2's
  // thread-per-request server on 2001 hardware).
  model.disk_overhead_s = 4.5e-3;
  model.fragment_overhead_s = 0.3e-3;
  return model;
}

StorageClassModel Class2() noexcept {
  StorageClassModel model;
  model.name = "class2";
  model.link_bytes_per_s = 1.0 * 1024 * 1024;  // shared 10 Mbit Ethernet
  model.link_latency_s = 3.0e-3;               // + metropolitan hop
  model.disk_bytes_per_s = 8.0 * 1024 * 1024;
  model.disk_overhead_s = 6.0e-3;
  model.fragment_overhead_s = 0.4e-3;
  return model;
}

StorageClassModel Class3() noexcept {
  StorageClassModel model;
  model.name = "class3";
  model.link_bytes_per_s = 2.0 * 1024 * 1024;  // 155 Mbit ATM via metro WAN
  model.link_latency_s = 2.5e-3;
  model.disk_bytes_per_s = 9.0 * 1024 * 1024;
  model.disk_overhead_s = 5.5e-3;
  model.fragment_overhead_s = 0.35e-3;
  return model;
}

StorageClassModel RemoteWan() noexcept {
  StorageClassModel model;
  model.name = "remote-wan";
  model.link_bytes_per_s = 0.6 * 1024 * 1024;
  model.link_latency_s = 35e-3;  // cross-country HPSS-style access
  model.disk_bytes_per_s = 25.0 * 1024 * 1024;
  model.disk_overhead_s = 8e-3;  // tape-frontend / hierarchical store
  model.fragment_overhead_s = 0.5e-3;
  return model;
}

StorageClassModel GeoWan() noexcept {
  StorageClassModel model;
  model.name = "geo-wan";
  // A provisioned inter-site link: fat pipe, long round trip. Distinct
  // from RemoteWan (thin pipe): streaming throughput is fine, per-message
  // latency dominates small/chatty accesses — the regime a cross-site
  // replica rank lives in (docs/REPLICATION.md).
  model.link_bytes_per_s = 50.0 * 1024 * 1024;
  model.link_latency_s = 40e-3;  // inter-site round trip / 2
  model.disk_bytes_per_s = 25.0 * 1024 * 1024;
  model.disk_overhead_s = 5e-3;  // ordinary disk frontend, unlike HPSS
  model.fragment_overhead_s = 0.35e-3;
  return model;
}

Result<StorageClassModel> StorageClassByName(std::string_view name) {
  if (EqualsIgnoreCase(name, "class1")) return Class1();
  if (EqualsIgnoreCase(name, "class2")) return Class2();
  if (EqualsIgnoreCase(name, "class3")) return Class3();
  if (EqualsIgnoreCase(name, "remote-wan") || EqualsIgnoreCase(name, "wan")) {
    return RemoteWan();
  }
  if (EqualsIgnoreCase(name, "geo-wan")) return GeoWan();
  return InvalidArgumentError("unknown storage class '" + std::string(name) +
                              "'");
}

std::vector<std::uint32_t> NormalizedPerformance(
    const std::vector<StorageClassModel>& servers, std::uint64_t brick_bytes) {
  std::vector<std::uint32_t> performance(servers.size(), 1);
  if (servers.empty()) return performance;
  double fastest = servers[0].SoloBrickTime(brick_bytes);
  for (const StorageClassModel& server : servers) {
    fastest = std::min(fastest, server.SoloBrickTime(brick_bytes));
  }
  for (std::size_t k = 0; k < servers.size(); ++k) {
    const double ratio = servers[k].SoloBrickTime(brick_bytes) / fastest;
    performance[k] =
        static_cast<std::uint32_t>(std::max(1.0, std::round(ratio)));
  }
  return performance;
}

}  // namespace dpfs::simnet
