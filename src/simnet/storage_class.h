// Calibrated models of the paper's three storage classes (§8).
//
// The paper's testbed:
//   class 1 — Linux workstations at Argonne, reached from the SP2 over a
//             local Fast Ethernet + ATM;
//   class 2 — 8 HP workstations at Northwestern on a shared 10 Mbit
//             Ethernet, reached over a metropolitan network;
//   class 3 — 8 SUN workstations at Northwestern on a 155 Mbit ATM LAN,
//             reached over the same metropolitan network.
//
// We model each server as a request-latency + two serial resources: the
// disk (per-request overhead + streaming bandwidth) and the network link
// (per-message latency + streaming bandwidth). The constants below are
// order-of-magnitude 2001 hardware, chosen so that accessing one 64 KB
// brick from class 1 is ~3x faster than from class 3 — the ratio the paper
// states when motivating the greedy striping algorithm (§8.2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpfs::simnet {

struct StorageClassModel {
  std::string name;
  double link_bytes_per_s = 1e7;   // streaming network bandwidth
  double link_latency_s = 1e-3;    // one-way per-message latency
  double disk_bytes_per_s = 1e7;   // local file system streaming rate
  double disk_overhead_s = 1e-3;   // per-request seek + open + FS overhead
  double fragment_overhead_s = 0;  // extra per additional fragment in a
                                   // combined request (near-sequential)
  /// Server streaming granularity: the disk and the link overlap once this
  /// many bytes of a request have cleared the first resource (the server
  /// reads/sends in buffer-sized chunks rather than store-and-forwarding
  /// whole requests).
  double stream_chunk_bytes = 128.0 * 1024;

  /// Time for one client to fetch one brick of `bytes` when the server is
  /// otherwise idle — the paper's "access time for one brick" used to derive
  /// normalized performance numbers.
  [[nodiscard]] double SoloBrickTime(std::uint64_t bytes) const noexcept;
};

/// The three calibrated classes plus two WAN models: RemoteWan is the
/// HPSS-style motivation baseline (thin pipe, not used in any reproduced
/// figure); GeoWan models a modern provisioned inter-site link — high
/// bandwidth *and* high latency — for the latency-sensitivity sweep in
/// bench/micro_degraded (cross-site replicas, docs/REPLICATION.md).
StorageClassModel Class1() noexcept;
StorageClassModel Class2() noexcept;
StorageClassModel Class3() noexcept;
StorageClassModel RemoteWan() noexcept;
StorageClassModel GeoWan() noexcept;

Result<StorageClassModel> StorageClassByName(std::string_view name);

/// Normalized performance numbers for the greedy algorithm (§4.1): the
/// fastest server gets 1, others get round(solo_time / fastest_solo_time)
/// (an integer >= 1, as the paper prescribes).
std::vector<std::uint32_t> NormalizedPerformance(
    const std::vector<StorageClassModel>& servers, std::uint64_t brick_bytes);

}  // namespace dpfs::simnet
