// Discrete-event replay of an IoPlan against storage-class models.
//
// This is the substitution for the paper's physical testbed (see DESIGN.md):
// the *real* DPFS planner produces the request stream (which bricks, which
// servers, combined or not, in what order), and this engine computes when
// each request would complete on 2001-era heterogeneous storage.
//
// Model per server:
//   * one DISK resource — FIFO; a request occupies it for
//     disk_overhead + bytes/disk_bw + (fragments-1)*fragment_overhead;
//   * one LINK resource — FIFO; a message occupies it for bytes/link_bw.
// Per-message one-way latency is added outside the resources (pipelined).
// A READ request flows  client → [latency] → DISK → LINK → [latency] → client.
// A WRITE request flows client → [latency] → LINK → DISK → client (ack is
// latency only).
// Each client is synchronous: it issues its next request only after the
// previous one completes — the paper's client behaviour, which is what makes
// request count so important (§4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "layout/plan.h"
#include "simnet/storage_class.h"

namespace dpfs::simnet {

struct ReplayOptions {
  /// Client-side per-request CPU cost (marshalling, metadata math).
  double client_overhead_s = 0.05e-3;
  /// Shared compute-side uplink shared by ALL clients (the SP2 partition's
  /// connection to the outside in the paper's testbed). 0 disables the
  /// resource (infinite uplink).
  double client_uplink_bytes_per_s = 0;
};

struct ReplayResult {
  double makespan_s = 0;                  // slowest client's finish time
  std::vector<double> client_finish_s;    // per client
  std::size_t total_requests = 0;
  std::uint64_t transfer_bytes = 0;       // bytes that crossed links
  std::uint64_t useful_bytes = 0;         // bytes the application asked for

  /// The paper's reported metric: application bytes over makespan.
  [[nodiscard]] double aggregate_bandwidth_MBps() const noexcept {
    return makespan_s <= 0
               ? 0
               : static_cast<double>(useful_bytes) / (1024.0 * 1024.0) /
                     makespan_s;
  }
  /// Wire efficiency: useful / transferred.
  [[nodiscard]] double efficiency() const noexcept {
    return transfer_bytes == 0
               ? 1.0
               : static_cast<double>(useful_bytes) /
                     static_cast<double>(transfer_bytes);
  }
};

/// Replays `plan` against `servers` (one model per layout::ServerId).
/// All clients start at t = 0.
Result<ReplayResult> Replay(const layout::IoPlan& plan,
                            const std::vector<StorageClassModel>& servers,
                            const ReplayOptions& options = {});

}  // namespace dpfs::simnet
