#include "simnet/replay.h"

#include <algorithm>
#include <queue>

namespace dpfs::simnet {
namespace {

/// A serial FIFO resource (a server's disk, a server's link, or the shared
/// compute-side uplink).
struct FifoResource {
  double free_at = 0;
};

/// One stage of a request's pipeline through the resources.
struct StageSpec {
  FifoResource* resource = nullptr;  // nullptr = stage skipped
  double service = 0;                // busy time on the resource
  double head = 0;                   // time until the first streamed chunk
                                     // is available to the next stage
};

struct Event {
  double time = 0;
  std::uint64_t seq = 0;
  std::uint32_t client = 0;
  std::size_t request_index = 0;
  std::size_t stage = 0;      // stage about to be *entered*
  double prev_end = 0;        // when the previous stage finishes entirely

  friend bool operator>(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

struct ServerState {
  FifoResource disk;
  FifoResource link;
};

/// Fragments in one request: whole-brick reads fetch one fragment per
/// brick; sieve reads and writes move the coalesced brick-space fragments;
/// a list request moves exactly the wire extents its plan carries, which
/// keeps the simulator pinned to what the executor sends
/// (tests/integration/model_validation_test.cpp).
std::uint64_t RequestFragments(const layout::ServerRequest& request,
                               const layout::ClientPlan& client) {
  if (client.list_io) {
    return std::max<std::uint64_t>(1, request.list_extents.size());
  }
  if (client.direction == layout::IoDirection::kRead &&
      client.whole_brick_reads) {
    return request.bricks.size();
  }
  std::uint64_t fragments = 0;
  for (const layout::BrickRequest& brick : request.bricks) {
    fragments += std::max<std::uint64_t>(1, brick.fragments);
  }
  return fragments;
}

}  // namespace

Result<ReplayResult> Replay(const layout::IoPlan& plan,
                            const std::vector<StorageClassModel>& servers,
                            const ReplayOptions& options) {
  for (const layout::ClientPlan& client : plan.clients) {
    for (const layout::ServerRequest& request : client.requests) {
      if (request.server >= servers.size()) {
        return InvalidArgumentError(
            "plan references server " + std::to_string(request.server) +
            " but only " + std::to_string(servers.size()) + " are modeled");
      }
    }
  }

  ReplayResult result;
  result.client_finish_s.assign(plan.clients.size(), 0.0);
  result.total_requests = plan.total_requests();
  result.transfer_bytes = plan.total_transfer_bytes();
  result.useful_bytes = plan.total_useful_bytes();

  std::vector<ServerState> server_state(servers.size());
  FifoResource client_uplink;  // shared by every compute node
  const bool model_uplink = options.client_uplink_bytes_per_s > 0;

  // Builds the stage pipeline of one request. Reads flow
  // disk → server link → [shared uplink]; writes flow
  // [shared uplink] → server link → disk.
  const auto build_stages = [&](const layout::ClientPlan& client,
                                const layout::ServerRequest& request,
                                StageSpec out[3]) {
    const StorageClassModel& model = servers[request.server];
    ServerState& state = server_state[request.server];
    const double bytes = static_cast<double>(request.transfer_bytes());
    const std::uint64_t fragments =
        std::max<std::uint64_t>(1, RequestFragments(request, client));
    const double disk_service =
        model.disk_overhead_s + bytes / model.disk_bytes_per_s +
        static_cast<double>(fragments - 1) * model.fragment_overhead_s;
    const double link_service = bytes / model.link_bytes_per_s;
    const double chunk = std::min(bytes, model.stream_chunk_bytes);

    StageSpec disk;
    disk.resource = &state.disk;
    disk.service = disk_service;
    disk.head = model.disk_overhead_s + chunk / model.disk_bytes_per_s;

    StageSpec link;
    link.resource = &state.link;
    link.service = link_service;
    link.head = chunk / model.link_bytes_per_s;

    StageSpec uplink;
    uplink.resource = model_uplink ? &client_uplink : nullptr;
    uplink.service =
        model_uplink ? bytes / options.client_uplink_bytes_per_s : 0;
    uplink.head =
        model_uplink ? chunk / options.client_uplink_bytes_per_s : 0;

    if (client.direction == layout::IoDirection::kRead) {
      out[0] = disk;
      out[1] = link;
      out[2] = uplink;
    } else {
      out[0] = uplink;
      out[1] = link;
      out[2] = disk;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t seq = 0;

  const auto issue = [&](std::uint32_t c, std::size_t request_index,
                         double at) {
    const layout::ClientPlan& client = plan.clients[c];
    const StorageClassModel& model =
        servers[client.requests[request_index].server];
    queue.push(Event{at + options.client_overhead_s + model.link_latency_s,
                     seq++, c, request_index, 0, 0.0});
  };

  for (std::uint32_t c = 0; c < plan.clients.size(); ++c) {
    const layout::ClientPlan& client = plan.clients[c];
    if (client.requests.empty()) continue;
    if (client.parallel_dispatch) {
      // Extension: the client hands every (combined) request to a dispatch
      // thread at once instead of walking them sequentially.
      for (std::size_t r = 0; r < client.requests.size(); ++r) {
        issue(c, r, 0.0);
      }
    } else {
      issue(c, 0, 0.0);
    }
  }

  while (!queue.empty()) {
    const Event event = queue.top();
    queue.pop();
    const layout::ClientPlan& client = plan.clients[event.client];
    const layout::ServerRequest& request =
        client.requests[event.request_index];
    const StorageClassModel& model = servers[request.server];

    StageSpec stages[3];
    build_stages(client, request, stages);

    if (event.stage < 3) {
      // Find the next real stage (skipped stages pass straight through).
      std::size_t s = event.stage;
      while (s < 3 && stages[s].resource == nullptr) ++s;
      if (s < 3) {
        const StageSpec& stage = stages[s];
        const double start = std::max(event.time, stage.resource->free_at);
        // A streaming stage cannot finish before its producer has finished.
        const double end =
            std::max(start + stage.service, event.prev_end);
        stage.resource->free_at = end;
        // Is this the last real stage of the pipeline?
        std::size_t next = s + 1;
        while (next < 3 && stages[next].resource == nullptr) ++next;
        if (next < 3) {
          const double head = std::min(start + stage.head, end);
          queue.push(Event{head, seq++, event.client, event.request_index,
                           s + 1, end});
        } else {
          // Reply/ack latency, then completion.
          queue.push(Event{end + model.link_latency_s, seq++, event.client,
                           event.request_index, 3, end});
        }
        continue;
      }
      // Degenerate request with no real stages at all.
      queue.push(Event{event.prev_end + model.link_latency_s, seq++,
                       event.client, event.request_index, 3,
                       event.prev_end});
      continue;
    }

    // Stage 3: request complete.
    result.client_finish_s[event.client] =
        std::max(result.client_finish_s[event.client], event.time);
    if (!client.parallel_dispatch) {
      const std::size_t next = event.request_index + 1;
      if (next < client.requests.size()) {
        issue(event.client, next, event.time);
      }
    }
  }

  for (const double finish : result.client_finish_s) {
    result.makespan_s = std::max(result.makespan_s, finish);
  }
  return result;
}

}  // namespace dpfs::simnet
