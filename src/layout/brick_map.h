// BrickMap: the striping geometry of one DPFS file.
//
// A DPFS file is a sequence of bricks numbered 0..num_bricks-1 (§3 of the
// paper). The file level decides the brick shape:
//   * Linear     — a brick is `brick_bytes` contiguous bytes of the
//                  row-major flattened file (Fig 4).
//   * Multidim   — a brick is an N-d tile `brick_shape` of elements (Fig 6).
//   * Array      — a brick is one HPF chunk, i.e. a tile of shape
//                  array_shape / chunk_grid (Fig 7). Internally an array
//                  file is a multidim file whose tile equals the chunk.
//
// BrickMap answers: how many bricks, how big, and — for a requested region
// or byte extent — which bricks are touched, how many bytes of each brick
// are useful, and the exact brick-local byte runs needed to gather/scatter
// the caller's buffer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/geometry.h"
#include "layout/hpf.h"

namespace dpfs::layout {

using BrickId = std::uint64_t;

enum class FileLevel : std::uint8_t { kLinear = 0, kMultidim = 1, kArray = 2 };

std::string_view FileLevelName(FileLevel level) noexcept;
Result<FileLevel> ParseFileLevel(std::string_view name);

/// One contiguous byte run inside one brick, paired with where those bytes
/// live in the caller's packed region buffer. The unit of gather/scatter.
struct BrickRun {
  BrickId brick = 0;
  std::uint64_t offset_in_brick = 0;  // bytes from the brick's start
  std::uint64_t buffer_offset = 0;    // bytes into the packed region buffer
  std::uint64_t length = 0;           // bytes

  friend bool operator==(const BrickRun&, const BrickRun&) = default;
};

/// Per-brick usage summary for planning and simulation.
struct BrickUsage {
  std::uint64_t useful_bytes = 0;  // bytes of this brick the caller needs
  std::uint64_t num_runs = 0;      // row runs (buffer-side scatter/gather)
  /// Contiguous pieces in *brick* space after coalescing adjacent runs —
  /// the fragment count a write (or sieve read) actually sends. A fully
  /// covered brick is one fragment even though it has many buffer runs.
  std::uint64_t fragments = 0;
};

class BrickMap {
 public:
  /// A default BrickMap is an empty linear file; use the factories below.
  BrickMap() = default;

  /// Linear level over a raw byte stream (Fig 4). `total_bytes` may be 0 for
  /// a file about to be written. When the linear file logically holds a
  /// row-major array, pass its shape/element size so region access works
  /// (Fig 5's workload); otherwise use the byte-extent APIs.
  static Result<BrickMap> Linear(std::uint64_t total_bytes,
                                 std::uint64_t brick_bytes);
  static Result<BrickMap> LinearArray(Shape array_shape,
                                      std::uint64_t element_size,
                                      std::uint64_t brick_bytes);

  /// Multidimensional level (Fig 6): brick_shape tiles array_shape. Edge
  /// bricks are padded on disk to the full brick size, so every brick slot
  /// has identical extent.
  static Result<BrickMap> Multidim(Shape array_shape, Shape brick_shape,
                                   std::uint64_t element_size);

  /// Array level (Fig 7): one brick per HPF chunk. Requires each BLOCK
  /// dimension divisible by the grid extent.
  static Result<BrickMap> Array(Shape array_shape, const HpfPattern& pattern,
                                const ProcessGrid& grid,
                                std::uint64_t element_size);

  [[nodiscard]] FileLevel level() const noexcept { return level_; }
  [[nodiscard]] std::uint64_t num_bricks() const noexcept;
  /// Bytes in a full brick slot (uniform across bricks; the final linear
  /// brick may hold fewer valid bytes, see brick_valid_bytes).
  [[nodiscard]] std::uint64_t brick_bytes() const noexcept {
    return brick_bytes_;
  }
  /// Valid payload bytes in `brick` (== brick_bytes() except the linear
  /// tail brick and padded edge bricks of multidim files).
  [[nodiscard]] std::uint64_t brick_valid_bytes(BrickId brick) const noexcept;
  /// Bytes a whole-brick READ must fetch to cover every valid element. For
  /// linear files valid data is contiguous from the slot start, so this is
  /// brick_valid_bytes; for tiled files a clipped edge tile keeps elements
  /// at their full-tile row-major offsets (with holes), so the full slot is
  /// fetched and the holes read back as zeroes.
  [[nodiscard]] std::uint64_t brick_fetch_bytes(BrickId brick) const noexcept;
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }
  [[nodiscard]] std::uint64_t element_size() const noexcept {
    return element_size_;
  }
  [[nodiscard]] const Shape& array_shape() const noexcept {
    return array_shape_;
  }
  /// Brick tile shape in elements (multidim/array only).
  [[nodiscard]] const Shape& brick_shape() const noexcept {
    return brick_shape_;
  }
  /// Shape of the brick grid (multidim/array only).
  [[nodiscard]] const Shape& brick_grid() const noexcept {
    return brick_grid_;
  }
  [[nodiscard]] bool has_array_shape() const noexcept {
    return !array_shape_.empty();
  }

  /// Enumerates gather/scatter runs for an element region, in buffer order
  /// (row-major over the region). Error if the map has no array shape or the
  /// region is out of bounds.
  Status ForEachRun(const Region& region,
                    const std::function<void(const BrickRun&)>& fn) const;

  /// Enumerates runs for a raw byte extent (linear level only).
  Status ForEachByteRun(std::uint64_t offset, std::uint64_t length,
                        const std::function<void(const BrickRun&)>& fn) const;

  /// Per-brick usage for an element region. For multidim/array this is
  /// computed analytically per touched brick (no run enumeration), so it is
  /// cheap even for paper-scale arrays (64K x 64K).
  Result<std::map<BrickId, BrickUsage>> SummarizeRegion(
      const Region& region) const;

  /// Per-brick usage for a raw byte extent (linear level only).
  Result<std::map<BrickId, BrickUsage>> SummarizeByteRange(
      std::uint64_t offset, std::uint64_t length) const;

 private:
  Status ForEachRunLinear(const Region& region,
                          const std::function<void(const BrickRun&)>& fn) const;
  Status ForEachRunTiled(const Region& region,
                         const std::function<void(const BrickRun&)>& fn) const;
  Result<std::map<BrickId, BrickUsage>> SummarizeTiled(
      const Region& region) const;
  Result<std::map<BrickId, BrickUsage>> SummarizeLinearRegion(
      const Region& region) const;

  FileLevel level_ = FileLevel::kLinear;
  std::uint64_t element_size_ = 1;
  std::uint64_t total_bytes_ = 0;   // valid payload bytes of the whole file
  std::uint64_t brick_bytes_ = 0;   // full brick slot size
  Shape array_shape_;               // empty for raw linear streams
  Shape brick_shape_;               // multidim/array tile (elements)
  Shape brick_grid_;                // bricks per dimension (multidim/array)
};

}  // namespace dpfs::layout
