#include "layout/replication.h"

#include <algorithm>
#include <set>

namespace dpfs::layout {

namespace {

/// Effective per-brick cost for replica placement: round-robin primaries
/// carry no meaningful performance numbers, so replicas of a round-robin
/// file spread uniformly (P = 1 everywhere).
std::vector<std::uint32_t> EffectiveCosts(
    PlacementPolicy policy, const std::vector<std::uint32_t>& performance) {
  if (policy == PlacementPolicy::kRoundRobin) {
    return std::vector<std::uint32_t>(performance.size(), 1);
  }
  return performance;
}

}  // namespace

Result<ReplicatedDistribution> ReplicatedDistribution::Create(
    PlacementPolicy policy, std::uint64_t num_bricks,
    const std::vector<std::uint32_t>& performance, const ReplicationSpec& spec,
    const std::vector<std::uint64_t>& capacity_bricks) {
  if (spec.factor == 0) {
    return InvalidArgumentError("replication factor must be >= 1");
  }
  const std::uint32_t num_servers =
      static_cast<std::uint32_t>(performance.size());
  if (!spec.domains.empty() && spec.domains.size() != performance.size()) {
    return InvalidArgumentError(
        "failure-domain vector must be empty or match server count (" +
        std::to_string(spec.domains.size()) + " domains, " +
        std::to_string(performance.size()) + " servers)");
  }
  // domain_of(k): explicit map, or every server its own domain.
  std::vector<std::uint32_t> domain(num_servers);
  for (std::uint32_t k = 0; k < num_servers; ++k) {
    domain[k] = spec.domains.empty() ? k : spec.domains[k];
  }
  const std::size_t distinct_domains =
      std::set<std::uint32_t>(domain.begin(), domain.end()).size();
  if (spec.factor > distinct_domains) {
    return InvalidArgumentError(
        "replication factor " + std::to_string(spec.factor) + " needs " +
        std::to_string(spec.factor) + " distinct failure domains, have " +
        std::to_string(distinct_domains));
  }

  ReplicatedDistribution out;
  DPFS_ASSIGN_OR_RETURN(
      BrickDistribution primary,
      BrickDistribution::Create(policy, num_bricks, performance,
                                capacity_bricks));
  out.ranks_.push_back(std::move(primary));
  if (spec.factor == 1) return out;

  const std::vector<std::uint32_t> costs = EffectiveCosts(policy, performance);
  // Shared accumulator, seeded with the primary's assignments so replica
  // load fills in around it rather than mirroring it.
  std::vector<std::uint64_t> accumulated(num_servers, 0);
  for (std::uint32_t k = 0; k < num_servers; ++k) {
    accumulated[k] += static_cast<std::uint64_t>(costs[k]) *
                      out.ranks_[0].bricks_on(k).size();
  }
  // Capacity budgets are shared across ranks too: a server's advertised
  // space holds primaries and replicas alike.
  std::vector<std::uint64_t> remaining = capacity_bricks;
  const bool budgeted = policy == PlacementPolicy::kCapacityAware;
  if (budgeted) {
    for (std::uint32_t k = 0; k < num_servers; ++k) {
      const std::uint64_t used = out.ranks_[0].bricks_on(k).size();
      remaining[k] = remaining[k] >= used ? remaining[k] - used : 0;
    }
  }

  for (std::uint32_t r = 1; r < spec.factor; ++r) {
    std::vector<std::vector<BrickId>> server_bricks(num_servers);
    for (std::uint64_t brick = 0; brick < num_bricks; ++brick) {
      // Domains already holding a copy of this brick (earlier ranks).
      std::set<std::uint32_t> used_domains;
      for (std::uint32_t earlier = 0; earlier < r; ++earlier) {
        used_domains.insert(domain[out.ranks_[earlier].server_for(brick)]);
      }
      std::uint32_t best = num_servers;
      for (std::uint32_t k = 0; k < num_servers; ++k) {
        if (used_domains.contains(domain[k])) continue;
        if (budgeted && remaining[k] == 0) continue;
        if (best == num_servers ||
            accumulated[k] + costs[k] < accumulated[best] + costs[best]) {
          best = k;
        }
      }
      if (best == num_servers) {
        return ResourceExhaustedError(
            "no server can hold replica " + std::to_string(r) + " of brick " +
            std::to_string(brick) +
            " (capacity budgets exhausted outside its used failure domains)");
      }
      accumulated[best] += costs[best];
      if (budgeted) --remaining[best];
      server_bricks[best].push_back(brick);
    }
    DPFS_ASSIGN_OR_RETURN(
        BrickDistribution rank_dist,
        BrickDistribution::FromBrickLists(num_bricks,
                                          std::move(server_bricks)));
    out.ranks_.push_back(std::move(rank_dist));
  }
  return out;
}

Result<ReplicatedDistribution> ReplicatedDistribution::FromRanks(
    std::vector<BrickDistribution> ranks) {
  if (ranks.empty()) {
    return InvalidArgumentError("need at least one distribution rank");
  }
  for (std::size_t r = 1; r < ranks.size(); ++r) {
    if (ranks[r].num_bricks() != ranks[0].num_bricks() ||
        ranks[r].num_servers() != ranks[0].num_servers()) {
      return InvalidArgumentError(
          "replica rank " + std::to_string(r) +
          " disagrees with the primary on brick or server count");
    }
  }
  ReplicatedDistribution out;
  out.ranks_ = std::move(ranks);
  return out;
}

Result<ClientPlan> ExpandWritePlan(const ClientPlan& plan,
                                   const ReplicatedDistribution& dist) {
  if (dist.factor() <= 1) return plan;
  if (plan.list_io) {
    return UnimplementedError(
        "write replication does not compose with list-I/O plans");
  }
  ClientPlan expanded = plan;
  expanded.requests.clear();
  for (const ServerRequest& request : plan.requests) {
    expanded.requests.push_back(request);
    for (std::uint32_t r = 1; r < dist.factor(); ++r) {
      DPFS_ASSIGN_OR_RETURN(
          std::vector<ServerRequest> remapped,
          RemapRequestToRank(request, dist.rank(r), r));
      for (ServerRequest& replica_request : remapped) {
        expanded.requests.push_back(std::move(replica_request));
      }
    }
  }
  return expanded;
}

Result<std::vector<ServerRequest>> RemapRequestToRank(
    const ServerRequest& request, const BrickDistribution& rank_dist,
    std::uint32_t rank) {
  if (!request.list_extents.empty()) {
    return UnimplementedError(
        "list-I/O requests cannot be remapped to a replica rank");
  }
  std::vector<ServerRequest> out;
  for (const BrickRequest& brick : request.bricks) {
    if (brick.brick >= rank_dist.num_bricks()) {
      return InvalidArgumentError("brick " + std::to_string(brick.brick) +
                                  " out of range for the replica rank");
    }
    const ServerId server = rank_dist.server_for(brick.brick);
    auto it = std::find_if(
        out.begin(), out.end(),
        [server](const ServerRequest& r) { return r.server == server; });
    if (it == out.end()) {
      ServerRequest fresh;
      fresh.server = server;
      fresh.replica = rank;
      out.push_back(std::move(fresh));
      it = out.end() - 1;
    }
    it->bricks.push_back(brick);
  }
  std::sort(out.begin(), out.end(),
            [](const ServerRequest& a, const ServerRequest& b) {
              return a.server < b.server;
            });
  return out;
}

std::string ReplicaSubfileName(const std::string& path, std::uint32_t rank) {
  if (rank == 0) return path;
  return path + "#r" + std::to_string(rank);
}

}  // namespace dpfs::layout
