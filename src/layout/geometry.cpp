#include "layout/geometry.h"

#include <algorithm>

namespace dpfs::layout {

std::uint64_t NumElements(const Shape& shape) noexcept {
  if (shape.empty()) return 0;
  std::uint64_t n = 1;
  for (const std::uint64_t extent : shape) n *= extent;
  return n;
}

Status ValidateShape(const Shape& shape) {
  if (shape.empty()) return InvalidArgumentError("shape must have rank >= 1");
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (shape[d] == 0) {
      return InvalidArgumentError("shape dimension " + std::to_string(d) +
                                  " must be >= 1");
    }
  }
  return Status::Ok();
}

std::uint64_t LinearIndex(const Shape& shape, const Coords& coords) noexcept {
  std::uint64_t index = 0;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    index = index * shape[d] + coords[d];
  }
  return index;
}

Coords CoordsFromLinear(const Shape& shape, std::uint64_t index) {
  Coords coords(shape.size());
  for (std::size_t d = shape.size(); d-- > 0;) {
    coords[d] = index % shape[d];
    index /= shape[d];
  }
  return coords;
}

std::string Region::ToString() const {
  std::string out = "[";
  for (std::size_t d = 0; d < lower.size(); ++d) {
    if (d > 0) out += ", ";
    out += std::to_string(lower[d]) + ":" +
           std::to_string(lower[d] + extent[d]);
  }
  out += ")";
  return out;
}

Status ValidateRegion(const Shape& shape, const Region& region) {
  if (region.lower.size() != shape.size() ||
      region.extent.size() != shape.size()) {
    return InvalidArgumentError("region rank " +
                                std::to_string(region.lower.size()) +
                                " does not match array rank " +
                                std::to_string(shape.size()));
  }
  for (std::size_t d = 0; d < shape.size(); ++d) {
    if (region.extent[d] == 0) {
      return InvalidArgumentError("region extent in dimension " +
                                  std::to_string(d) + " must be >= 1");
    }
    if (region.lower[d] + region.extent[d] > shape[d]) {
      return OutOfRangeError("region " + region.ToString() +
                             " exceeds array bound in dimension " +
                             std::to_string(d));
    }
  }
  return Status::Ok();
}

Region Intersect(const Region& a, const Region& b) {
  Region out;
  const std::size_t rank = a.rank();
  out.lower.resize(rank);
  out.extent.resize(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    const std::uint64_t lo = std::max(a.lower[d], b.lower[d]);
    const std::uint64_t hi =
        std::min(a.lower[d] + a.extent[d], b.lower[d] + b.extent[d]);
    out.lower[d] = lo;
    out.extent[d] = hi > lo ? hi - lo : 0;
  }
  return out;
}

void ForEachRowRun(const Region& region,
                   const std::function<void(const RowRun&)>& fn) {
  if (region.empty()) return;
  const std::size_t rank = region.rank();
  const std::uint64_t run_length = region.extent[rank - 1];

  // Iterate row-major over all leading-dimension combinations.
  Coords cursor = region.lower;
  while (true) {
    fn(RowRun{cursor, run_length});
    // Increment the odometer over dims [0, rank-1).
    std::size_t d = rank - 1;
    while (d-- > 0) {
      if (++cursor[d] < region.lower[d] + region.extent[d]) break;
      cursor[d] = region.lower[d];
      if (d == 0) return;
    }
    if (rank == 1) return;
  }
}

std::vector<RowRun> RegionRowRuns(const Region& region) {
  std::vector<RowRun> runs;
  const std::uint64_t count =
      region.empty() ? 0
                     : region.num_elements() / region.extent[region.rank() - 1];
  runs.reserve(count);
  ForEachRowRun(region, [&runs](const RowRun& run) { runs.push_back(run); });
  return runs;
}

}  // namespace dpfs::layout
