// HPF-style data distribution patterns: (BLOCK, *), (*, BLOCK),
// (BLOCK, BLOCK), generalized to N dimensions.
//
// The paper's array-level files store one HPF chunk per brick, and its
// evaluation workloads assign each compute process one chunk of the global
// array. This header computes those chunk regions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/geometry.h"

namespace dpfs::layout {

enum class DimDist : std::uint8_t {
  kStar = 0,   // dimension not distributed (every process sees all of it)
  kBlock = 1,  // dimension split into contiguous equal blocks
};

/// One distribution tag per array dimension, e.g. {kStar, kBlock} ≙ (*,BLOCK).
struct HpfPattern {
  std::vector<DimDist> dims;

  /// Parses "(BLOCK,*)" / "(*,BLOCK)" / "(BLOCK,BLOCK)" style notation,
  /// case-insensitive, whitespace tolerated. Used by the DPFS-FILE-ATTR
  /// `pattern` column.
  static Result<HpfPattern> Parse(std::string_view text);

  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] std::size_t rank() const noexcept { return dims.size(); }
  [[nodiscard]] std::size_t num_block_dims() const noexcept;

  friend bool operator==(const HpfPattern&, const HpfPattern&) = default;
};

/// How processes are arranged over the BLOCK dimensions. grid[i] is the
/// number of processes along the i-th *BLOCK* dimension (kStar dimensions
/// are skipped). Product must equal the process count.
struct ProcessGrid {
  Shape grid;

  /// Builds a near-square grid for `num_processes` over `num_block_dims`
  /// dimensions (factorizes greedily, larger factors first).
  static ProcessGrid Auto(std::uint64_t num_processes,
                          std::size_t num_block_dims);

  [[nodiscard]] std::uint64_t num_processes() const noexcept {
    return NumElements(grid);
  }
};

/// The chunk of `array_shape` owned by process `rank` under `pattern` with
/// `grid`. Requires each BLOCK dimension extent to be divisible by the grid
/// extent along it (the paper's workloads always are).
Result<Region> ChunkForProcess(const Shape& array_shape,
                               const HpfPattern& pattern,
                               const ProcessGrid& grid, std::uint64_t rank);

/// All chunks in process-rank order (rank = row-major index into the grid).
Result<std::vector<Region>> AllChunks(const Shape& array_shape,
                                      const HpfPattern& pattern,
                                      const ProcessGrid& grid);

}  // namespace dpfs::layout
