#include "layout/plan.h"

#include <algorithm>
#include <map>

namespace dpfs::layout {

std::uint64_t ServerRequest::transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const BrickRequest& brick : bricks) total += brick.transfer_bytes;
  return total;
}

std::uint64_t ServerRequest::useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const BrickRequest& brick : bricks) total += brick.useful_bytes;
  return total;
}

std::uint64_t ClientPlan::transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ServerRequest& request : requests) {
    total += request.transfer_bytes();
  }
  return total;
}

std::uint64_t ClientPlan::useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ServerRequest& request : requests) total += request.useful_bytes();
  return total;
}

std::size_t IoPlan::total_requests() const noexcept {
  std::size_t total = 0;
  for (const ClientPlan& client : clients) total += client.num_requests();
  return total;
}

std::uint64_t IoPlan::total_transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ClientPlan& client : clients) total += client.transfer_bytes();
  return total;
}

std::uint64_t IoPlan::total_useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ClientPlan& client : clients) total += client.useful_bytes();
  return total;
}

namespace {

BrickRequest MakeBrickRequest(const BrickMap& map, const PlanOptions& options,
                              BrickId brick, const BrickUsage& usage) {
  BrickRequest request;
  request.brick = brick;
  request.useful_bytes = usage.useful_bytes;
  request.num_runs = usage.num_runs;
  request.fragments = std::max<std::uint64_t>(1, usage.fragments);
  // Whole-brick reads move the whole brick (the client discards the rest);
  // sieve reads and writes move only the useful bytes, at the right subfile
  // offsets.
  request.transfer_bytes =
      options.direction == IoDirection::kRead && options.whole_brick_reads
          ? map.brick_fetch_bytes(brick)
          : usage.useful_bytes;
  return request;
}

/// Builds the ordered request stream from a per-brick usage summary.
ClientPlan BuildPlan(const BrickMap& map, const BrickDistribution& dist,
                     std::uint32_t client,
                     const std::map<BrickId, BrickUsage>& usage,
                     const PlanOptions& options) {
  ClientPlan plan;
  plan.client = client;
  plan.direction = options.direction;
  plan.whole_brick_reads = options.whole_brick_reads;
  plan.parallel_dispatch = options.parallel_dispatch;

  if (!options.combine) {
    // General approach (§4.2): one request per brick, issued in ascending
    // brick order — exactly the behaviour whose congestion the paper
    // analyses (all clients start on the same server).
    plan.requests.reserve(usage.size());
    for (const auto& [brick, brick_usage] : usage) {
      ServerRequest request;
      request.server = dist.server_for(brick);
      request.bricks.push_back(
          MakeBrickRequest(map, options, brick, brick_usage));
      plan.requests.push_back(std::move(request));
    }
    return plan;
  }

  // Request combination: group bricks by owning server (keeping ascending
  // brick order inside each request).
  std::map<ServerId, ServerRequest> grouped;
  for (const auto& [brick, brick_usage] : usage) {
    const ServerId server = dist.server_for(brick);
    ServerRequest& request = grouped[server];
    request.server = server;
    request.bricks.push_back(
        MakeBrickRequest(map, options, brick, brick_usage));
  }
  std::vector<ServerRequest> requests;
  requests.reserve(grouped.size());
  for (auto& [server, request] : grouped) {
    requests.push_back(std::move(request));
  }
  // Scheduling: rotate the server order per client so client c begins at a
  // different server than client c+1 (§4.2's subfile staggering).
  if (options.rotate_start && !requests.empty()) {
    const std::size_t shift = client % requests.size();
    std::rotate(requests.begin(), requests.begin() + shift, requests.end());
  }
  plan.requests = std::move(requests);
  return plan;
}

}  // namespace

Result<ClientPlan> PlanRegionAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    std::uint32_t client, const Region& region,
                                    const PlanOptions& options) {
  if (dist.num_bricks() < map.num_bricks()) {
    return InvalidArgumentError(
        "distribution covers " + std::to_string(dist.num_bricks()) +
        " bricks but file has " + std::to_string(map.num_bricks()));
  }
  DPFS_ASSIGN_OR_RETURN(const auto usage, map.SummarizeRegion(region));
  return BuildPlan(map, dist, client, usage, options);
}

Result<ClientPlan> PlanByteAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client, std::uint64_t offset,
                                  std::uint64_t length,
                                  const PlanOptions& options) {
  if (dist.num_bricks() < map.num_bricks()) {
    return InvalidArgumentError(
        "distribution covers " + std::to_string(dist.num_bricks()) +
        " bricks but file has " + std::to_string(map.num_bricks()));
  }
  DPFS_ASSIGN_OR_RETURN(const auto usage,
                        map.SummarizeByteRange(offset, length));
  return BuildPlan(map, dist, client, usage, options);
}

Result<ClientPlan> PlanListAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client,
                                  const std::vector<FileExtent>& extents,
                                  const PlanOptions& options) {
  if (map.level() != FileLevel::kLinear) {
    return InvalidArgumentError("list I/O requires a linear file");
  }
  if (dist.num_bricks() < map.num_bricks()) {
    return InvalidArgumentError(
        "distribution covers " + std::to_string(dist.num_bricks()) +
        " bricks but file has " + std::to_string(map.num_bricks()));
  }
  const std::uint64_t brick_bytes = map.brick_bytes();
  std::uint64_t prev_end = 0;
  for (const FileExtent& extent : extents) {
    if (extent.length == 0) {
      return InvalidArgumentError("list extents must be non-empty");
    }
    if (prev_end > 0 && extent.offset < prev_end) {
      return InvalidArgumentError(
          "list extents must be sorted by offset and non-overlapping");
    }
    prev_end = extent.offset + extent.length;
  }
  if (prev_end > 0) {
    const BrickId last_brick = (prev_end - 1) / brick_bytes;
    if (last_brick >= dist.num_bricks()) {
      return InvalidArgumentError(
          "distribution covers " + std::to_string(dist.num_bricks()) +
          " bricks but the access reaches brick " + std::to_string(last_brick));
    }
  }

  ClientPlan plan;
  plan.client = client;
  plan.direction = options.direction;
  plan.whole_brick_reads = false;  // a list transfer moves only listed bytes
  plan.parallel_dispatch = options.parallel_dispatch;
  plan.list_io = true;

  // Walk the extents in file order (so bricks — and, per brick, brick-local
  // offsets — only grow), splitting at brick boundaries. The packed buffer
  // cursor advances with every byte taken, extent gaps notwithstanding.
  std::map<ServerId, ServerRequest> grouped;
  std::map<BrickId, std::uint64_t> fragment_end;
  std::uint64_t buffer_offset = 0;
  for (const FileExtent& extent : extents) {
    std::uint64_t offset = extent.offset;
    std::uint64_t remaining = extent.length;
    while (remaining > 0) {
      const BrickId brick = offset / brick_bytes;
      const std::uint64_t within = offset % brick_bytes;
      const std::uint64_t take = std::min(brick_bytes - within, remaining);
      const ServerId server = dist.server_for(brick);
      const std::uint64_t subfile_offset =
          dist.slot_for(brick) * brick_bytes + within;
      ServerRequest& request = grouped[server];
      request.server = server;
      // Per-brick accounting: useful == transfer (sieve-style), fragments
      // counted in brick space exactly as SummarizeByteRange would.
      if (request.bricks.empty() || request.bricks.back().brick != brick) {
        request.bricks.push_back(BrickRequest{brick, 0, 0, 0, 0});
      }
      BrickRequest& usage = request.bricks.back();
      usage.useful_bytes += take;
      usage.transfer_bytes += take;
      usage.num_runs += 1;
      const auto end_it = fragment_end.find(brick);
      if (end_it == fragment_end.end() || end_it->second != within) {
        usage.fragments += 1;
      }
      fragment_end[brick] = within + take;
      // Wire extents: extend the server's last extent when both the subfile
      // and the packed buffer continue exactly (this also merges across
      // consecutive slots of one subfile); otherwise start a new fragment.
      if (!request.list_extents.empty() &&
          request.list_extents.back().subfile_offset +
                  request.list_extents.back().length ==
              subfile_offset &&
          request.list_extents.back().buffer_offset +
                  request.list_extents.back().length ==
              buffer_offset) {
        request.list_extents.back().length += take;
      } else {
        request.list_extents.push_back(
            ListExtent{subfile_offset, buffer_offset, take});
      }
      offset += take;
      buffer_offset += take;
      remaining -= take;
    }
  }

  std::vector<ServerRequest> requests;
  requests.reserve(grouped.size());
  for (auto& [server, request] : grouped) {
    // The wire requires strictly ascending extents. The walk above emits
    // them in file order, which is subfile order for every placement whose
    // slots grow with brick id (all built-in policies); a hand-built
    // distribution (FromBrickLists) may permute slots, so sort to be sure.
    std::sort(request.list_extents.begin(), request.list_extents.end(),
              [](const ListExtent& a, const ListExtent& b) {
                return a.subfile_offset < b.subfile_offset;
              });
    requests.push_back(std::move(request));
  }
  // Same §4.2 staggering as combined plans: client c starts on a different
  // server than client c+1.
  if (options.rotate_start && !requests.empty()) {
    const std::size_t shift = client % requests.size();
    std::rotate(requests.begin(), requests.begin() + shift, requests.end());
  }
  plan.requests = std::move(requests);
  return plan;
}

Result<IoPlan> PlanCollectiveAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    const std::vector<Region>& regions,
                                    const PlanOptions& options) {
  IoPlan plan;
  plan.clients.reserve(regions.size());
  for (std::size_t client = 0; client < regions.size(); ++client) {
    DPFS_ASSIGN_OR_RETURN(
        ClientPlan client_plan,
        PlanRegionAccess(map, dist, static_cast<std::uint32_t>(client),
                         regions[client], options));
    plan.clients.push_back(std::move(client_plan));
  }
  return plan;
}

}  // namespace dpfs::layout
