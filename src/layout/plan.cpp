#include "layout/plan.h"

#include <algorithm>
#include <map>

namespace dpfs::layout {

std::uint64_t ServerRequest::transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const BrickRequest& brick : bricks) total += brick.transfer_bytes;
  return total;
}

std::uint64_t ServerRequest::useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const BrickRequest& brick : bricks) total += brick.useful_bytes;
  return total;
}

std::uint64_t ClientPlan::transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ServerRequest& request : requests) {
    total += request.transfer_bytes();
  }
  return total;
}

std::uint64_t ClientPlan::useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ServerRequest& request : requests) total += request.useful_bytes();
  return total;
}

std::size_t IoPlan::total_requests() const noexcept {
  std::size_t total = 0;
  for (const ClientPlan& client : clients) total += client.num_requests();
  return total;
}

std::uint64_t IoPlan::total_transfer_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ClientPlan& client : clients) total += client.transfer_bytes();
  return total;
}

std::uint64_t IoPlan::total_useful_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const ClientPlan& client : clients) total += client.useful_bytes();
  return total;
}

namespace {

BrickRequest MakeBrickRequest(const BrickMap& map, const PlanOptions& options,
                              BrickId brick, const BrickUsage& usage) {
  BrickRequest request;
  request.brick = brick;
  request.useful_bytes = usage.useful_bytes;
  request.num_runs = usage.num_runs;
  request.fragments = std::max<std::uint64_t>(1, usage.fragments);
  // Whole-brick reads move the whole brick (the client discards the rest);
  // sieve reads and writes move only the useful bytes, at the right subfile
  // offsets.
  request.transfer_bytes =
      options.direction == IoDirection::kRead && options.whole_brick_reads
          ? map.brick_fetch_bytes(brick)
          : usage.useful_bytes;
  return request;
}

/// Builds the ordered request stream from a per-brick usage summary.
ClientPlan BuildPlan(const BrickMap& map, const BrickDistribution& dist,
                     std::uint32_t client,
                     const std::map<BrickId, BrickUsage>& usage,
                     const PlanOptions& options) {
  ClientPlan plan;
  plan.client = client;
  plan.direction = options.direction;
  plan.whole_brick_reads = options.whole_brick_reads;
  plan.parallel_dispatch = options.parallel_dispatch;

  if (!options.combine) {
    // General approach (§4.2): one request per brick, issued in ascending
    // brick order — exactly the behaviour whose congestion the paper
    // analyses (all clients start on the same server).
    plan.requests.reserve(usage.size());
    for (const auto& [brick, brick_usage] : usage) {
      ServerRequest request;
      request.server = dist.server_for(brick);
      request.bricks.push_back(
          MakeBrickRequest(map, options, brick, brick_usage));
      plan.requests.push_back(std::move(request));
    }
    return plan;
  }

  // Request combination: group bricks by owning server (keeping ascending
  // brick order inside each request).
  std::map<ServerId, ServerRequest> grouped;
  for (const auto& [brick, brick_usage] : usage) {
    const ServerId server = dist.server_for(brick);
    ServerRequest& request = grouped[server];
    request.server = server;
    request.bricks.push_back(
        MakeBrickRequest(map, options, brick, brick_usage));
  }
  std::vector<ServerRequest> requests;
  requests.reserve(grouped.size());
  for (auto& [server, request] : grouped) {
    requests.push_back(std::move(request));
  }
  // Scheduling: rotate the server order per client so client c begins at a
  // different server than client c+1 (§4.2's subfile staggering).
  if (options.rotate_start && !requests.empty()) {
    const std::size_t shift = client % requests.size();
    std::rotate(requests.begin(), requests.begin() + shift, requests.end());
  }
  plan.requests = std::move(requests);
  return plan;
}

}  // namespace

Result<ClientPlan> PlanRegionAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    std::uint32_t client, const Region& region,
                                    const PlanOptions& options) {
  if (dist.num_bricks() < map.num_bricks()) {
    return InvalidArgumentError(
        "distribution covers " + std::to_string(dist.num_bricks()) +
        " bricks but file has " + std::to_string(map.num_bricks()));
  }
  DPFS_ASSIGN_OR_RETURN(const auto usage, map.SummarizeRegion(region));
  return BuildPlan(map, dist, client, usage, options);
}

Result<ClientPlan> PlanByteAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client, std::uint64_t offset,
                                  std::uint64_t length,
                                  const PlanOptions& options) {
  if (dist.num_bricks() < map.num_bricks()) {
    return InvalidArgumentError(
        "distribution covers " + std::to_string(dist.num_bricks()) +
        " bricks but file has " + std::to_string(map.num_bricks()));
  }
  DPFS_ASSIGN_OR_RETURN(const auto usage,
                        map.SummarizeByteRange(offset, length));
  return BuildPlan(map, dist, client, usage, options);
}

Result<IoPlan> PlanCollectiveAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    const std::vector<Region>& regions,
                                    const PlanOptions& options) {
  IoPlan plan;
  plan.clients.reserve(regions.size());
  for (std::size_t client = 0; client < regions.size(); ++client) {
    DPFS_ASSIGN_OR_RETURN(
        ClientPlan client_plan,
        PlanRegionAccess(map, dist, static_cast<std::uint32_t>(client),
                         regions[client], options));
    plan.clients.push_back(std::move(client_plan));
  }
  return plan;
}

}  // namespace dpfs::layout
