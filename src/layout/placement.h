// Brick-to-server placement: round-robin and the paper's greedy
// heterogeneity-aware striping algorithm (Fig 8).
//
// A BrickDistribution is the materialized assignment for one file: which
// server owns each brick, each server's bricklist (the subfile, in slot
// order), and each brick's slot index within its subfile. The bricklist text
// encoding ("0,2,6,8,...") is exactly what the DPFS-FILE-DISTRIBUTION table
// stores in its `bricklist` column.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/brick_map.h"

namespace dpfs::layout {

using ServerId = std::uint32_t;

enum class PlacementPolicy : std::uint8_t {
  kRoundRobin = 0,
  kGreedy = 1,
  /// Greedy, but a server stops receiving bricks once its advertised
  /// capacity (DPFS-SERVER's `capacity` column) is exhausted.
  kCapacityAware = 2,
};

std::string_view PlacementPolicyName(PlacementPolicy policy) noexcept;
Result<PlacementPolicy> ParsePlacementPolicy(std::string_view name);

class BrickDistribution {
 public:
  /// Brick i → server i mod num_servers (Fig 3).
  static Result<BrickDistribution> RoundRobin(std::uint64_t num_bricks,
                                              std::uint32_t num_servers);

  /// The greedy algorithm of Fig 8. `performance[k]` is server k's
  /// normalized per-brick access cost: 1 for the fastest class, larger
  /// integers for slower ones. Brick i goes to the server k minimizing
  /// A[k] + P[k]; ties go to the lowest k; then A[k] += P[k]. Fast servers
  /// therefore receive proportionally more bricks (~P_slow/P_fast times).
  static Result<BrickDistribution> Greedy(
      std::uint64_t num_bricks, const std::vector<std::uint32_t>& performance);

  /// The greedy algorithm under per-server brick budgets: server k takes at
  /// most `capacity_bricks[k]` bricks; within budget the Fig 8 rule applies.
  /// Fails with kResourceExhausted when the budgets cannot hold the file.
  static Result<BrickDistribution> CapacityAware(
      std::uint64_t num_bricks, const std::vector<std::uint32_t>& performance,
      const std::vector<std::uint64_t>& capacity_bricks);

  /// Chooses by policy; round-robin ignores `performance`, and only
  /// kCapacityAware reads `capacity_bricks` (pass empty otherwise).
  static Result<BrickDistribution> Create(
      PlacementPolicy policy, std::uint64_t num_bricks,
      const std::vector<std::uint32_t>& performance,
      const std::vector<std::uint64_t>& capacity_bricks = {});

  /// Rebuilds a distribution from per-server bricklists (metadata load).
  static Result<BrickDistribution> FromBrickLists(
      std::uint64_t num_bricks,
      std::vector<std::vector<BrickId>> server_bricks);

  [[nodiscard]] std::uint32_t num_servers() const noexcept {
    return static_cast<std::uint32_t>(server_bricks_.size());
  }
  [[nodiscard]] std::uint64_t num_bricks() const noexcept {
    return brick_to_server_.size();
  }
  [[nodiscard]] ServerId server_for(BrickId brick) const {
    return brick_to_server_.at(brick);
  }
  /// Slot index of `brick` within its server's subfile; the brick's bytes
  /// live at [slot * brick_bytes, slot * brick_bytes + brick_bytes).
  [[nodiscard]] std::uint64_t slot_for(BrickId brick) const {
    return brick_slot_.at(brick);
  }
  [[nodiscard]] const std::vector<BrickId>& bricks_on(ServerId server) const {
    return server_bricks_.at(server);
  }

  /// "0,2,6,8" encoding used by the DPFS-FILE-DISTRIBUTION table.
  static std::string EncodeBrickList(const std::vector<BrickId>& bricks);
  static Result<std::vector<BrickId>> DecodeBrickList(std::string_view text);

 private:
  Status Finalize(std::uint64_t num_bricks);

  std::vector<ServerId> brick_to_server_;
  std::vector<std::uint64_t> brick_slot_;
  std::vector<std::vector<BrickId>> server_bricks_;
};

}  // namespace dpfs::layout
