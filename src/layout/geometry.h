// N-dimensional array geometry.
//
// DPFS treats multidimensional and array-level files as row-major N-d element
// arrays. This header supplies the coordinate math everything else builds on:
// shapes, linearization, hyper-rectangular regions, and decomposition of a
// region into contiguous row runs (the unit of scatter/gather I/O).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace dpfs::layout {

/// Extent per dimension, row-major (last dimension contiguous). Rank ≥ 1.
using Shape = std::vector<std::uint64_t>;
/// A point, same rank as its Shape.
using Coords = std::vector<std::uint64_t>;

/// Product of extents (number of elements). Returns 0 for empty shapes.
std::uint64_t NumElements(const Shape& shape) noexcept;

/// Validates rank ≥ 1 and every extent ≥ 1.
Status ValidateShape(const Shape& shape);

/// Row-major linear index of `coords` within `shape`. Precondition: in range.
std::uint64_t LinearIndex(const Shape& shape, const Coords& coords) noexcept;

/// Inverse of LinearIndex.
Coords CoordsFromLinear(const Shape& shape, std::uint64_t index);

/// ceil(a / b) for b > 0.
constexpr std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// An axis-aligned hyper-rectangle: [lower, lower + extent) per dimension.
struct Region {
  Coords lower;
  Shape extent;

  [[nodiscard]] std::size_t rank() const noexcept { return lower.size(); }
  [[nodiscard]] std::uint64_t num_elements() const noexcept {
    return NumElements(extent);
  }
  [[nodiscard]] bool empty() const noexcept { return num_elements() == 0; }
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Region&, const Region&) = default;
};

/// Validates `region` fits inside an array of `shape` (same rank, in bounds).
Status ValidateRegion(const Shape& shape, const Region& region);

/// Intersection of two regions of equal rank; empty extent when disjoint.
Region Intersect(const Region& a, const Region& b);

/// A maximal run of elements contiguous in the last dimension.
struct RowRun {
  Coords start;            // first element of the run (global coords)
  std::uint64_t length;    // elements, along the last dimension
};

/// Decomposes `region` into row runs in row-major order of their start
/// coordinates. The number of runs is region.num_elements() / extent.back().
std::vector<RowRun> RegionRowRuns(const Region& region);

/// Calls fn(run) for each row run without materializing the vector
/// (regions can contain millions of runs).
void ForEachRowRun(const Region& region,
                   const std::function<void(const RowRun&)>& fn);

}  // namespace dpfs::layout
