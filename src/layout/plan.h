// Request planning: turns (file layout, placement, per-client access) into
// the stream of client→server requests, with or without the paper's request
// combination optimization (§4.2).
//
// The resulting IoPlan is consumed by two executors:
//   * dpfs::client — issues the requests over real TCP and moves real bytes;
//   * dpfs::simnet — replays the request stream against calibrated network
//     and disk models to reproduce the paper's performance figures.
//
// Transfer accounting follows the paper's semantics: a READ fetches whole
// bricks ("only the first two elements of each brick are really useful, the
// second half will be discarded", §3.2), so partially-useful bricks still
// move their full size across the wire. A WRITE sends only the useful bytes
// (the server writes them at the right offsets), which in the paper's
// workloads always covers whole bricks anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "layout/brick_map.h"
#include "layout/placement.h"

namespace dpfs::layout {

enum class IoDirection : std::uint8_t { kRead = 0, kWrite = 1 };

/// One contiguous byte extent of a linear file — the input unit of list I/O
/// planning (a flattened `Datatype` access, already coalesced).
struct FileExtent {
  std::uint64_t offset = 0;  // bytes from the start of the file
  std::uint64_t length = 0;  // bytes

  friend bool operator==(const FileExtent&, const FileExtent&) = default;
};

/// One wire fragment of a list request: a contiguous subfile byte range
/// paired with where those bytes live in the caller's packed access buffer.
/// This is exactly the (offset, length) pair the list_read/list_write wire
/// bodies carry (docs/WIRE_PROTOCOL.md); buffer_offset stays client-side.
struct ListExtent {
  std::uint64_t subfile_offset = 0;  // bytes from the subfile's start
  std::uint64_t buffer_offset = 0;   // bytes into the packed access buffer
  std::uint64_t length = 0;          // bytes

  friend bool operator==(const ListExtent&, const ListExtent&) = default;
};

/// One brick's worth of a request.
struct BrickRequest {
  BrickId brick = 0;
  std::uint64_t useful_bytes = 0;    // bytes the client actually needs
  std::uint64_t transfer_bytes = 0;  // bytes that cross the wire
  std::uint64_t num_runs = 0;        // buffer-side scatter/gather runs
  std::uint64_t fragments = 0;       // wire fragments after run coalescing

  friend bool operator==(const BrickRequest&, const BrickRequest&) = default;
};

/// One client→server message (a combined request carries many bricks; an
/// uncombined one exactly one).
struct ServerRequest {
  ServerId server = 0;
  /// Replica rank this request targets (replication extension,
  /// layout/replication.h). 0 = the primary copy — the only value
  /// unreplicated plans ever carry.
  std::uint32_t replica = 0;
  std::vector<BrickRequest> bricks;
  /// List-I/O plans only (PlanListAccess): the exact subfile extents this
  /// request names on the wire, in subfile-offset order, merged where both
  /// the subfile and the packed buffer continue. Empty for every other plan.
  std::vector<ListExtent> list_extents;

  [[nodiscard]] std::uint64_t transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t useful_bytes() const noexcept;
};

/// The ordered request stream of one client.
struct ClientPlan {
  std::uint32_t client = 0;
  IoDirection direction = IoDirection::kRead;
  /// Read fetch granularity this plan was built with (see PlanOptions).
  bool whole_brick_reads = true;
  /// Extension: issue every request concurrently (one dispatch thread per
  /// server) instead of the paper's sequential client loop.
  bool parallel_dispatch = false;
  /// Extension: this plan carries per-request subfile extent lists
  /// (ServerRequest::list_extents) and executes as list_read/list_write
  /// wire requests (docs/NONCONTIGUOUS_IO.md). Built by PlanListAccess.
  bool list_io = false;
  std::vector<ServerRequest> requests;

  [[nodiscard]] std::size_t num_requests() const noexcept {
    return requests.size();
  }
  [[nodiscard]] std::uint64_t transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t useful_bytes() const noexcept;
};

/// All clients of one collective access.
struct IoPlan {
  std::vector<ClientPlan> clients;

  [[nodiscard]] std::size_t total_requests() const noexcept;
  [[nodiscard]] std::uint64_t total_transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_useful_bytes() const noexcept;
};

struct PlanOptions {
  IoDirection direction = IoDirection::kRead;
  /// §4.2 request combination: all bricks a client needs from one server are
  /// coalesced into a single request.
  bool combine = false;
  /// §4.2 scheduling: with combination, client c issues its combined
  /// requests starting at server (c mod S) so clients fan out over distinct
  /// servers instead of stampeding server 0 together.
  bool rotate_start = true;
  /// The paper's READ semantics: fetch whole bricks and discard the unused
  /// part (§3.2). Set false for *sieve reads*, a DPFS extension that
  /// transfers only the useful runs — trading per-fragment overhead for
  /// wire efficiency (see bench/ablation_sieve_reads).
  bool whole_brick_reads = true;
  /// Extension: dispatch the client's requests concurrently rather than
  /// sequentially (see bench/ablation_parallel_dispatch).
  bool parallel_dispatch = false;
};

/// Plans one client's access to an element region of the file.
Result<ClientPlan> PlanRegionAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    std::uint32_t client, const Region& region,
                                    const PlanOptions& options);

/// Plans one client's access to a raw byte extent (linear files).
Result<ClientPlan> PlanByteAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client, std::uint64_t offset,
                                  std::uint64_t length,
                                  const PlanOptions& options);

/// Plans one client's list-I/O access to a set of byte extents of a linear
/// file (a flattened noncontiguous `Datatype` access). Every extent is split
/// at brick boundaries, each piece is mapped to its absolute subfile offset
/// (slot * brick_bytes + offset-in-brick), and all pieces bound for one
/// server ride in a single list request — list I/O always combines, so
/// `options.combine` is ignored and `options.whole_brick_reads` does not
/// apply (a list transfer moves exactly the listed bytes, like sieve).
/// `options.rotate_start` and `options.parallel_dispatch` behave as in the
/// other planners. Extents must be non-empty, sorted by offset, and
/// non-overlapping (adjacent is fine — adjacent pieces merge). Pure math,
/// like the rest of this layer.
Result<ClientPlan> PlanListAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client,
                                  const std::vector<FileExtent>& extents,
                                  const PlanOptions& options);

/// Plans a collective access: client i accesses regions[i].
Result<IoPlan> PlanCollectiveAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    const std::vector<Region>& regions,
                                    const PlanOptions& options);

}  // namespace dpfs::layout
