// Request planning: turns (file layout, placement, per-client access) into
// the stream of client→server requests, with or without the paper's request
// combination optimization (§4.2).
//
// The resulting IoPlan is consumed by two executors:
//   * dpfs::client — issues the requests over real TCP and moves real bytes;
//   * dpfs::simnet — replays the request stream against calibrated network
//     and disk models to reproduce the paper's performance figures.
//
// Transfer accounting follows the paper's semantics: a READ fetches whole
// bricks ("only the first two elements of each brick are really useful, the
// second half will be discarded", §3.2), so partially-useful bricks still
// move their full size across the wire. A WRITE sends only the useful bytes
// (the server writes them at the right offsets), which in the paper's
// workloads always covers whole bricks anyway.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "layout/brick_map.h"
#include "layout/placement.h"

namespace dpfs::layout {

enum class IoDirection : std::uint8_t { kRead = 0, kWrite = 1 };

/// One brick's worth of a request.
struct BrickRequest {
  BrickId brick = 0;
  std::uint64_t useful_bytes = 0;    // bytes the client actually needs
  std::uint64_t transfer_bytes = 0;  // bytes that cross the wire
  std::uint64_t num_runs = 0;        // buffer-side scatter/gather runs
  std::uint64_t fragments = 0;       // wire fragments after run coalescing

  friend bool operator==(const BrickRequest&, const BrickRequest&) = default;
};

/// One client→server message (a combined request carries many bricks; an
/// uncombined one exactly one).
struct ServerRequest {
  ServerId server = 0;
  std::vector<BrickRequest> bricks;

  [[nodiscard]] std::uint64_t transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t useful_bytes() const noexcept;
};

/// The ordered request stream of one client.
struct ClientPlan {
  std::uint32_t client = 0;
  IoDirection direction = IoDirection::kRead;
  /// Read fetch granularity this plan was built with (see PlanOptions).
  bool whole_brick_reads = true;
  /// Extension: issue every request concurrently (one dispatch thread per
  /// server) instead of the paper's sequential client loop.
  bool parallel_dispatch = false;
  std::vector<ServerRequest> requests;

  [[nodiscard]] std::size_t num_requests() const noexcept {
    return requests.size();
  }
  [[nodiscard]] std::uint64_t transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t useful_bytes() const noexcept;
};

/// All clients of one collective access.
struct IoPlan {
  std::vector<ClientPlan> clients;

  [[nodiscard]] std::size_t total_requests() const noexcept;
  [[nodiscard]] std::uint64_t total_transfer_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_useful_bytes() const noexcept;
};

struct PlanOptions {
  IoDirection direction = IoDirection::kRead;
  /// §4.2 request combination: all bricks a client needs from one server are
  /// coalesced into a single request.
  bool combine = false;
  /// §4.2 scheduling: with combination, client c issues its combined
  /// requests starting at server (c mod S) so clients fan out over distinct
  /// servers instead of stampeding server 0 together.
  bool rotate_start = true;
  /// The paper's READ semantics: fetch whole bricks and discard the unused
  /// part (§3.2). Set false for *sieve reads*, a DPFS extension that
  /// transfers only the useful runs — trading per-fragment overhead for
  /// wire efficiency (see bench/ablation_sieve_reads).
  bool whole_brick_reads = true;
  /// Extension: dispatch the client's requests concurrently rather than
  /// sequentially (see bench/ablation_parallel_dispatch).
  bool parallel_dispatch = false;
};

/// Plans one client's access to an element region of the file.
Result<ClientPlan> PlanRegionAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    std::uint32_t client, const Region& region,
                                    const PlanOptions& options);

/// Plans one client's access to a raw byte extent (linear files).
Result<ClientPlan> PlanByteAccess(const BrickMap& map,
                                  const BrickDistribution& dist,
                                  std::uint32_t client, std::uint64_t offset,
                                  std::uint64_t length,
                                  const PlanOptions& options);

/// Plans a collective access: client i accesses regions[i].
Result<IoPlan> PlanCollectiveAccess(const BrickMap& map,
                                    const BrickDistribution& dist,
                                    const std::vector<Region>& regions,
                                    const PlanOptions& options);

}  // namespace dpfs::layout
