#include "layout/brick_map.h"

#include <algorithm>

#include "common/strings.h"

namespace dpfs::layout {

std::string_view FileLevelName(FileLevel level) noexcept {
  switch (level) {
    case FileLevel::kLinear: return "linear";
    case FileLevel::kMultidim: return "multidim";
    case FileLevel::kArray: return "array";
  }
  return "unknown";
}

Result<FileLevel> ParseFileLevel(std::string_view name) {
  if (EqualsIgnoreCase(name, "linear")) return FileLevel::kLinear;
  if (EqualsIgnoreCase(name, "multidim") ||
      EqualsIgnoreCase(name, "multidims")) {
    return FileLevel::kMultidim;
  }
  if (EqualsIgnoreCase(name, "array")) return FileLevel::kArray;
  return InvalidArgumentError("unknown file level '" + std::string(name) +
                              "'");
}

// ---------------------------------------------------------------------------
// Factories

Result<BrickMap> BrickMap::Linear(std::uint64_t total_bytes,
                                  std::uint64_t brick_bytes) {
  if (brick_bytes == 0) {
    return InvalidArgumentError("brick size must be >= 1 byte");
  }
  BrickMap map;
  map.level_ = FileLevel::kLinear;
  map.total_bytes_ = total_bytes;
  map.brick_bytes_ = brick_bytes;
  map.element_size_ = 1;
  return map;
}

Result<BrickMap> BrickMap::LinearArray(Shape array_shape,
                                       std::uint64_t element_size,
                                       std::uint64_t brick_bytes) {
  DPFS_RETURN_IF_ERROR(ValidateShape(array_shape));
  if (element_size == 0) return InvalidArgumentError("element size must be >= 1");
  if (brick_bytes == 0) return InvalidArgumentError("brick size must be >= 1");
  BrickMap map;
  map.level_ = FileLevel::kLinear;
  map.element_size_ = element_size;
  map.total_bytes_ = NumElements(array_shape) * element_size;
  map.brick_bytes_ = brick_bytes;
  map.array_shape_ = std::move(array_shape);
  return map;
}

Result<BrickMap> BrickMap::Multidim(Shape array_shape, Shape brick_shape,
                                    std::uint64_t element_size) {
  DPFS_RETURN_IF_ERROR(ValidateShape(array_shape));
  DPFS_RETURN_IF_ERROR(ValidateShape(brick_shape));
  if (element_size == 0) return InvalidArgumentError("element size must be >= 1");
  if (array_shape.size() != brick_shape.size()) {
    return InvalidArgumentError("brick rank " +
                                std::to_string(brick_shape.size()) +
                                " does not match array rank " +
                                std::to_string(array_shape.size()));
  }
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    if (brick_shape[d] > array_shape[d]) {
      return InvalidArgumentError("brick extent exceeds array extent in dim " +
                                  std::to_string(d));
    }
  }
  BrickMap map;
  map.level_ = FileLevel::kMultidim;
  map.element_size_ = element_size;
  map.total_bytes_ = NumElements(array_shape) * element_size;
  map.brick_bytes_ = NumElements(brick_shape) * element_size;
  map.brick_grid_.resize(array_shape.size());
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    map.brick_grid_[d] = CeilDiv(array_shape[d], brick_shape[d]);
  }
  map.array_shape_ = std::move(array_shape);
  map.brick_shape_ = std::move(brick_shape);
  return map;
}

Result<BrickMap> BrickMap::Array(Shape array_shape, const HpfPattern& pattern,
                                 const ProcessGrid& grid,
                                 std::uint64_t element_size) {
  DPFS_RETURN_IF_ERROR(ValidateShape(array_shape));
  if (pattern.rank() != array_shape.size()) {
    return InvalidArgumentError("pattern rank does not match array rank");
  }
  if (grid.grid.size() != pattern.num_block_dims()) {
    return InvalidArgumentError(
        "process grid rank does not match BLOCK dimension count");
  }
  // Expand the grid over all dimensions (1 along kStar dims), then the array
  // level is a multidim map whose tile is exactly one chunk.
  Shape chunk_grid(array_shape.size(), 1);
  std::size_t block_dim = 0;
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    if (pattern.dims[d] == DimDist::kBlock) {
      chunk_grid[d] = grid.grid[block_dim++];
    }
  }
  Shape chunk_shape(array_shape.size());
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    if (array_shape[d] % chunk_grid[d] != 0) {
      return InvalidArgumentError(
          "array level requires dimension " + std::to_string(d) +
          " extent " + std::to_string(array_shape[d]) +
          " divisible by chunk grid " + std::to_string(chunk_grid[d]));
    }
    chunk_shape[d] = array_shape[d] / chunk_grid[d];
  }
  DPFS_ASSIGN_OR_RETURN(
      BrickMap map,
      Multidim(std::move(array_shape), std::move(chunk_shape), element_size));
  map.level_ = FileLevel::kArray;
  return map;
}

// ---------------------------------------------------------------------------
// Simple queries

std::uint64_t BrickMap::num_bricks() const noexcept {
  if (level_ == FileLevel::kLinear) {
    return total_bytes_ == 0 ? 0 : CeilDiv(total_bytes_, brick_bytes_);
  }
  return NumElements(brick_grid_);
}

std::uint64_t BrickMap::brick_valid_bytes(BrickId brick) const noexcept {
  if (level_ == FileLevel::kLinear) {
    const std::uint64_t start = brick * brick_bytes_;
    if (start >= total_bytes_) return 0;
    return std::min(brick_bytes_, total_bytes_ - start);
  }
  // Tiled: edge bricks cover a clipped tile.
  const Coords brick_coords = CoordsFromLinear(brick_grid_, brick);
  std::uint64_t elements = 1;
  for (std::size_t d = 0; d < array_shape_.size(); ++d) {
    const std::uint64_t lower = brick_coords[d] * brick_shape_[d];
    if (lower >= array_shape_[d]) return 0;
    elements *= std::min(brick_shape_[d], array_shape_[d] - lower);
  }
  return elements * element_size_;
}

std::uint64_t BrickMap::brick_fetch_bytes(BrickId brick) const noexcept {
  if (level_ == FileLevel::kLinear) return brick_valid_bytes(brick);
  return brick_valid_bytes(brick) == 0 ? 0 : brick_bytes_;
}

// ---------------------------------------------------------------------------
// Run enumeration

Status BrickMap::ForEachRun(
    const Region& region,
    const std::function<void(const BrickRun&)>& fn) const {
  if (!has_array_shape()) {
    return InvalidArgumentError(
        "region access requires an array-shaped file; use ForEachByteRun");
  }
  DPFS_RETURN_IF_ERROR(ValidateRegion(array_shape_, region));
  if (level_ == FileLevel::kLinear) return ForEachRunLinear(region, fn);
  return ForEachRunTiled(region, fn);
}

Status BrickMap::ForEachRunLinear(
    const Region& region,
    const std::function<void(const BrickRun&)>& fn) const {
  std::uint64_t buffer_offset = 0;
  ForEachRowRun(region, [&](const RowRun& row) {
    std::uint64_t offset =
        LinearIndex(array_shape_, row.start) * element_size_;
    std::uint64_t remaining = row.length * element_size_;
    while (remaining > 0) {
      const BrickId brick = offset / brick_bytes_;
      const std::uint64_t within = offset % brick_bytes_;
      const std::uint64_t take = std::min(brick_bytes_ - within, remaining);
      fn(BrickRun{brick, within, buffer_offset, take});
      offset += take;
      buffer_offset += take;
      remaining -= take;
    }
  });
  return Status::Ok();
}

Status BrickMap::ForEachRunTiled(
    const Region& region,
    const std::function<void(const BrickRun&)>& fn) const {
  const std::size_t rank = array_shape_.size();
  const std::uint64_t last_brick_extent = brick_shape_[rank - 1];
  std::uint64_t buffer_offset = 0;
  Coords brick_coords(rank);
  Coords local(rank);
  ForEachRowRun(region, [&](const RowRun& row) {
    // Split the run at brick boundaries along the last dimension.
    std::uint64_t col = row.start[rank - 1];
    std::uint64_t remaining = row.length;
    // Leading dims are fixed for the whole run.
    for (std::size_t d = 0; d + 1 < rank; ++d) {
      brick_coords[d] = row.start[d] / brick_shape_[d];
      local[d] = row.start[d] - brick_coords[d] * brick_shape_[d];
    }
    while (remaining > 0) {
      brick_coords[rank - 1] = col / last_brick_extent;
      local[rank - 1] = col - brick_coords[rank - 1] * last_brick_extent;
      const std::uint64_t take =
          std::min(last_brick_extent - local[rank - 1], remaining);
      const BrickId brick = LinearIndex(brick_grid_, brick_coords);
      const std::uint64_t offset_in_brick =
          LinearIndex(brick_shape_, local) * element_size_;
      fn(BrickRun{brick, offset_in_brick, buffer_offset,
                  take * element_size_});
      buffer_offset += take * element_size_;
      col += take;
      remaining -= take;
    }
  });
  return Status::Ok();
}

Status BrickMap::ForEachByteRun(
    std::uint64_t offset, std::uint64_t length,
    const std::function<void(const BrickRun&)>& fn) const {
  if (level_ != FileLevel::kLinear) {
    return InvalidArgumentError("byte-extent access requires a linear file");
  }
  std::uint64_t buffer_offset = 0;
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const BrickId brick = offset / brick_bytes_;
    const std::uint64_t within = offset % brick_bytes_;
    const std::uint64_t take = std::min(brick_bytes_ - within, remaining);
    fn(BrickRun{brick, within, buffer_offset, take});
    offset += take;
    buffer_offset += take;
    remaining -= take;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Summaries

Result<std::map<BrickId, BrickUsage>> BrickMap::SummarizeRegion(
    const Region& region) const {
  if (!has_array_shape()) {
    return InvalidArgumentError(
        "region access requires an array-shaped file; use SummarizeByteRange");
  }
  DPFS_RETURN_IF_ERROR(ValidateRegion(array_shape_, region));
  if (level_ == FileLevel::kLinear) return SummarizeLinearRegion(region);
  return SummarizeTiled(region);
}

Result<std::map<BrickId, BrickUsage>> BrickMap::SummarizeTiled(
    const Region& region) const {
  const std::size_t rank = array_shape_.size();
  // Bounding box of touched bricks per dimension.
  Coords first(rank);
  Coords last(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    first[d] = region.lower[d] / brick_shape_[d];
    last[d] = (region.lower[d] + region.extent[d] - 1) / brick_shape_[d];
  }
  std::map<BrickId, BrickUsage> out;
  Coords cursor = first;
  while (true) {
    // Intersection of the region with this brick's tile.
    Region tile;
    tile.lower.resize(rank);
    tile.extent.resize(rank);
    for (std::size_t d = 0; d < rank; ++d) {
      tile.lower[d] = cursor[d] * brick_shape_[d];
      tile.extent[d] = brick_shape_[d];
    }
    const Region overlap = Intersect(region, tile);
    if (!overlap.empty()) {
      BrickUsage usage;
      usage.useful_bytes = overlap.num_elements() * element_size_;
      usage.num_runs = overlap.num_elements() / overlap.extent[rank - 1];
      // Runs are contiguous in brick space across dimension d's boundary iff
      // every dimension after d is fully covered; the coalesced fragment
      // count is the product of extents before the last partial dimension.
      std::size_t last_partial = rank;  // rank = "none partial"
      for (std::size_t d = rank; d-- > 0;) {
        if (overlap.extent[d] != brick_shape_[d]) {
          last_partial = d;
          break;
        }
      }
      usage.fragments = 1;
      if (last_partial != rank) {
        for (std::size_t d = 0; d < last_partial; ++d) {
          usage.fragments *= overlap.extent[d];
        }
      }
      out[LinearIndex(brick_grid_, cursor)] = usage;
    }
    // Odometer over the bounding box.
    std::size_t d = rank;
    while (d-- > 0) {
      if (++cursor[d] <= last[d]) break;
      cursor[d] = first[d];
      if (d == 0) return out;
    }
  }
}

Result<std::map<BrickId, BrickUsage>> BrickMap::SummarizeLinearRegion(
    const Region& region) const {
  std::map<BrickId, BrickUsage> out;
  // Row runs are produced in row-major order, so brick-local offsets only
  // grow; a new fragment starts whenever a run does not abut the previous
  // one in the same brick.
  std::map<BrickId, std::uint64_t> fragment_end;
  ForEachRowRun(region, [&](const RowRun& row) {
    std::uint64_t offset = LinearIndex(array_shape_, row.start) * element_size_;
    std::uint64_t remaining = row.length * element_size_;
    while (remaining > 0) {
      const BrickId brick = offset / brick_bytes_;
      const std::uint64_t within = offset % brick_bytes_;
      const std::uint64_t take = std::min(brick_bytes_ - within, remaining);
      BrickUsage& usage = out[brick];
      usage.useful_bytes += take;
      usage.num_runs += 1;
      const auto end_it = fragment_end.find(brick);
      if (end_it == fragment_end.end() || end_it->second != within) {
        usage.fragments += 1;
      }
      fragment_end[brick] = within + take;
      offset += take;
      remaining -= take;
    }
  });
  return out;
}

Result<std::map<BrickId, BrickUsage>> BrickMap::SummarizeByteRange(
    std::uint64_t offset, std::uint64_t length) const {
  if (level_ != FileLevel::kLinear) {
    return InvalidArgumentError("byte-extent access requires a linear file");
  }
  std::map<BrickId, BrickUsage> out;
  std::uint64_t remaining = length;
  while (remaining > 0) {
    const BrickId brick = offset / brick_bytes_;
    const std::uint64_t within = offset % brick_bytes_;
    const std::uint64_t take = std::min(brick_bytes_ - within, remaining);
    BrickUsage& usage = out[brick];
    usage.useful_bytes += take;
    usage.num_runs += 1;
    usage.fragments += 1;  // one contiguous extent touches a brick once
    offset += take;
    remaining -= take;
  }
  return out;
}

}  // namespace dpfs::layout
