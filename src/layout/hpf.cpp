#include "layout/hpf.h"

#include "common/strings.h"

namespace dpfs::layout {

Result<HpfPattern> HpfPattern::Parse(std::string_view text) {
  std::string_view body = TrimWhitespace(text);
  if (body.size() >= 2 && body.front() == '(' && body.back() == ')') {
    body = body.substr(1, body.size() - 2);
  }
  HpfPattern pattern;
  for (const std::string& raw : SplitString(body, ',')) {
    const std::string_view token = TrimWhitespace(raw);
    if (token == "*") {
      pattern.dims.push_back(DimDist::kStar);
    } else if (EqualsIgnoreCase(token, "BLOCK")) {
      pattern.dims.push_back(DimDist::kBlock);
    } else {
      return InvalidArgumentError("bad HPF pattern token '" +
                                  std::string(token) + "' in '" +
                                  std::string(text) + "'");
    }
  }
  if (pattern.dims.empty()) {
    return InvalidArgumentError("empty HPF pattern '" + std::string(text) +
                                "'");
  }
  return pattern;
}

std::string HpfPattern::ToString() const {
  std::string out = "(";
  for (std::size_t d = 0; d < dims.size(); ++d) {
    if (d > 0) out += ",";
    out += dims[d] == DimDist::kBlock ? "BLOCK" : "*";
  }
  out += ")";
  return out;
}

std::size_t HpfPattern::num_block_dims() const noexcept {
  std::size_t n = 0;
  for (const DimDist dist : dims) {
    if (dist == DimDist::kBlock) ++n;
  }
  return n;
}

ProcessGrid ProcessGrid::Auto(std::uint64_t num_processes,
                              std::size_t num_block_dims) {
  ProcessGrid out;
  out.grid.assign(std::max<std::size_t>(num_block_dims, 1), 1);
  if (num_block_dims == 0) {
    out.grid = {std::max<std::uint64_t>(num_processes, 1)};
    return out;
  }
  // Peel off factors of the process count, assigning each to the currently
  // smallest grid dimension so the grid stays near-square.
  std::uint64_t remaining = std::max<std::uint64_t>(num_processes, 1);
  for (std::uint64_t factor = 2; remaining > 1;) {
    if (remaining % factor == 0) {
      std::size_t smallest = 0;
      for (std::size_t d = 1; d < out.grid.size(); ++d) {
        if (out.grid[d] < out.grid[smallest]) smallest = d;
      }
      out.grid[smallest] *= factor;
      remaining /= factor;
    } else {
      ++factor;
      if (factor * factor > remaining) factor = remaining;  // prime tail
    }
  }
  return out;
}

Result<Region> ChunkForProcess(const Shape& array_shape,
                               const HpfPattern& pattern,
                               const ProcessGrid& grid, std::uint64_t rank) {
  DPFS_RETURN_IF_ERROR(ValidateShape(array_shape));
  if (pattern.rank() != array_shape.size()) {
    return InvalidArgumentError("pattern rank " +
                                std::to_string(pattern.rank()) +
                                " does not match array rank " +
                                std::to_string(array_shape.size()));
  }
  if (grid.grid.size() != pattern.num_block_dims()) {
    return InvalidArgumentError(
        "process grid rank " + std::to_string(grid.grid.size()) +
        " does not match BLOCK dimension count " +
        std::to_string(pattern.num_block_dims()));
  }
  if (rank >= grid.num_processes()) {
    return OutOfRangeError("process rank " + std::to_string(rank) +
                           " out of range for grid of " +
                           std::to_string(grid.num_processes()));
  }

  // Row-major position of this process within the grid.
  const Coords grid_coords = CoordsFromLinear(grid.grid, rank);

  Region chunk;
  chunk.lower.resize(array_shape.size());
  chunk.extent.resize(array_shape.size());
  std::size_t block_dim = 0;
  for (std::size_t d = 0; d < array_shape.size(); ++d) {
    if (pattern.dims[d] == DimDist::kStar) {
      chunk.lower[d] = 0;
      chunk.extent[d] = array_shape[d];
      continue;
    }
    const std::uint64_t parts = grid.grid[block_dim];
    if (array_shape[d] % parts != 0) {
      return InvalidArgumentError(
          "dimension " + std::to_string(d) + " extent " +
          std::to_string(array_shape[d]) + " not divisible by grid extent " +
          std::to_string(parts));
    }
    const std::uint64_t block = array_shape[d] / parts;
    chunk.lower[d] = grid_coords[block_dim] * block;
    chunk.extent[d] = block;
    ++block_dim;
  }
  return chunk;
}

Result<std::vector<Region>> AllChunks(const Shape& array_shape,
                                      const HpfPattern& pattern,
                                      const ProcessGrid& grid) {
  std::vector<Region> chunks;
  const std::uint64_t n = grid.num_processes();
  chunks.reserve(n);
  for (std::uint64_t rank = 0; rank < n; ++rank) {
    DPFS_ASSIGN_OR_RETURN(Region chunk,
                          ChunkForProcess(array_shape, pattern, grid, rank));
    chunks.push_back(std::move(chunk));
  }
  return chunks;
}

}  // namespace dpfs::layout
