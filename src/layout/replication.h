// Replica placement and plan expansion for the replication extension
// (docs/REPLICATION.md). Pure math, like the rest of `layout`: both the TCP
// executor and the simulator consume the expanded plans.
//
// A ReplicatedDistribution is R stacked BrickDistributions ("ranks").
// Rank 0 is exactly the primary BrickDistribution::Create output — with
// R = 1 the layout is byte-identical to the unreplicated system. Ranks
// r >= 1 are placed by the same Fig 8 greedy rule, with two constraints:
//   * a brick's R replicas never share a failure domain, and
//   * the cost accumulator A[k] is shared across ranks, so replica load
//     spreads over the whole cluster instead of mirroring the primary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/placement.h"
#include "layout/plan.h"

namespace dpfs::layout {

/// How (and whether) a file is replicated.
struct ReplicationSpec {
  /// Total copies of every brick, primary included. 1 = off (the paper's
  /// semantics and the default).
  std::uint32_t factor = 1;
  /// Failure domain of each server (rack, zone, site...). Empty = every
  /// server is its own domain. A brick's `factor` replicas are placed in
  /// `factor` distinct domains, so losing one domain loses at most one
  /// copy.
  std::vector<std::uint32_t> domains;

  [[nodiscard]] bool replicated() const noexcept { return factor > 1; }

  friend bool operator==(const ReplicationSpec&,
                         const ReplicationSpec&) = default;
};

/// The materialized placement of all R copies of one file.
class ReplicatedDistribution {
 public:
  /// Places rank 0 with BrickDistribution::Create(policy, ...) — unchanged
  /// from the unreplicated path — then each replica rank with the shared-
  /// accumulator greedy rule above. `spec.domains` must be empty or sized
  /// to the server count; fails with kInvalidArgument when `spec.factor`
  /// exceeds the number of distinct failure domains, and with
  /// kResourceExhausted when capacity budgets (kCapacityAware) cannot hold
  /// all R copies.
  static Result<ReplicatedDistribution> Create(
      PlacementPolicy policy, std::uint64_t num_bricks,
      const std::vector<std::uint32_t>& performance,
      const ReplicationSpec& spec,
      const std::vector<std::uint64_t>& capacity_bricks = {});

  /// Rebuilds from per-rank distributions (metadata load). Every rank must
  /// agree on num_bricks and num_servers.
  static Result<ReplicatedDistribution> FromRanks(
      std::vector<BrickDistribution> ranks);

  [[nodiscard]] std::uint32_t factor() const noexcept {
    return static_cast<std::uint32_t>(ranks_.size());
  }
  [[nodiscard]] const BrickDistribution& rank(std::uint32_t r) const {
    return ranks_.at(r);
  }
  [[nodiscard]] const BrickDistribution& primary() const { return ranks_.at(0); }
  [[nodiscard]] const std::vector<BrickDistribution>& ranks() const noexcept {
    return ranks_;
  }

 private:
  std::vector<BrickDistribution> ranks_;
};

/// Expands a write plan to fan every request out to all replica ranks:
/// after each original (rank 0) request, one request per replica rank
/// carrying the same bricks regrouped by that rank's server, with
/// ServerRequest::replica set. With factor 1 the plan is returned
/// unchanged. List-I/O plans cannot be expanded (the extension composes
/// write replication with contiguous and collective plans only — see
/// docs/REPLICATION.md).
Result<ClientPlan> ExpandWritePlan(const ClientPlan& plan,
                                   const ReplicatedDistribution& dist);

/// Regroups one (rank 0) read request's bricks by where they live at
/// `rank` — the failover path's "same bytes, different servers" remap.
/// Requests come back in ascending server order with
/// ServerRequest::replica = rank.
Result<std::vector<ServerRequest>> RemapRequestToRank(
    const ServerRequest& request, const BrickDistribution& rank_dist,
    std::uint32_t rank);

/// The wire/store name of a brick's subfile at a replica rank: rank 0 is
/// the file path itself (byte-identical to the unreplicated system), rank
/// r >= 1 appends "#r<r>" so a server holding both a primary and a replica
/// subfile of one file keeps them apart.
std::string ReplicaSubfileName(const std::string& path, std::uint32_t rank);

}  // namespace dpfs::layout
