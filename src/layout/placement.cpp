#include "layout/placement.h"

#include "common/strings.h"

namespace dpfs::layout {

std::string_view PlacementPolicyName(PlacementPolicy policy) noexcept {
  switch (policy) {
    case PlacementPolicy::kRoundRobin: return "round-robin";
    case PlacementPolicy::kGreedy: return "greedy";
    case PlacementPolicy::kCapacityAware: return "capacity-aware";
  }
  return "unknown";
}

Result<PlacementPolicy> ParsePlacementPolicy(std::string_view name) {
  if (EqualsIgnoreCase(name, "round-robin") ||
      EqualsIgnoreCase(name, "roundrobin") || EqualsIgnoreCase(name, "rr")) {
    return PlacementPolicy::kRoundRobin;
  }
  if (EqualsIgnoreCase(name, "greedy")) return PlacementPolicy::kGreedy;
  if (EqualsIgnoreCase(name, "capacity-aware") ||
      EqualsIgnoreCase(name, "capacity")) {
    return PlacementPolicy::kCapacityAware;
  }
  return InvalidArgumentError("unknown placement policy '" +
                              std::string(name) + "'");
}

Status BrickDistribution::Finalize(std::uint64_t num_bricks) {
  brick_slot_.assign(num_bricks, 0);
  std::vector<bool> seen(num_bricks, false);
  for (const std::vector<BrickId>& bricks : server_bricks_) {
    for (std::size_t slot = 0; slot < bricks.size(); ++slot) {
      const BrickId brick = bricks[slot];
      if (brick >= num_bricks) {
        return InvalidArgumentError("brick id " + std::to_string(brick) +
                                    " out of range (" +
                                    std::to_string(num_bricks) + " bricks)");
      }
      if (seen[brick]) {
        return InvalidArgumentError("brick " + std::to_string(brick) +
                                    " assigned to multiple servers");
      }
      seen[brick] = true;
      brick_slot_[brick] = slot;
    }
  }
  for (std::uint64_t brick = 0; brick < num_bricks; ++brick) {
    if (!seen[brick]) {
      return InvalidArgumentError("brick " + std::to_string(brick) +
                                  " not assigned to any server");
    }
  }
  return Status::Ok();
}

Result<BrickDistribution> BrickDistribution::RoundRobin(
    std::uint64_t num_bricks, std::uint32_t num_servers) {
  if (num_servers == 0) {
    return InvalidArgumentError("need at least one server");
  }
  BrickDistribution dist;
  dist.brick_to_server_.resize(num_bricks);
  dist.server_bricks_.resize(num_servers);
  for (std::uint64_t brick = 0; brick < num_bricks; ++brick) {
    const ServerId server = static_cast<ServerId>(brick % num_servers);
    dist.brick_to_server_[brick] = server;
    dist.server_bricks_[server].push_back(brick);
  }
  DPFS_RETURN_IF_ERROR(dist.Finalize(num_bricks));
  return dist;
}

Result<BrickDistribution> BrickDistribution::Greedy(
    std::uint64_t num_bricks, const std::vector<std::uint32_t>& performance) {
  if (performance.empty()) {
    return InvalidArgumentError("need at least one server");
  }
  for (std::size_t k = 0; k < performance.size(); ++k) {
    if (performance[k] == 0) {
      return InvalidArgumentError("server " + std::to_string(k) +
                                  " performance number must be >= 1");
    }
  }
  BrickDistribution dist;
  dist.brick_to_server_.resize(num_bricks);
  dist.server_bricks_.resize(performance.size());
  // Fig 8: A[k] accumulates assigned cost; brick i goes to the k that
  // minimizes A[k] + P[k].
  std::vector<std::uint64_t> accumulated(performance.size(), 0);
  for (std::uint64_t brick = 0; brick < num_bricks; ++brick) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < performance.size(); ++k) {
      if (accumulated[k] + performance[k] <
          accumulated[best] + performance[best]) {
        best = k;
      }
    }
    accumulated[best] += performance[best];
    dist.brick_to_server_[brick] = static_cast<ServerId>(best);
    dist.server_bricks_[best].push_back(brick);
  }
  DPFS_RETURN_IF_ERROR(dist.Finalize(num_bricks));
  return dist;
}

Result<BrickDistribution> BrickDistribution::CapacityAware(
    std::uint64_t num_bricks, const std::vector<std::uint32_t>& performance,
    const std::vector<std::uint64_t>& capacity_bricks) {
  if (performance.empty()) {
    return InvalidArgumentError("need at least one server");
  }
  if (capacity_bricks.size() != performance.size()) {
    return InvalidArgumentError(
        "capacity vector must match server count");
  }
  std::uint64_t total_capacity = 0;
  for (const std::uint64_t capacity : capacity_bricks) {
    total_capacity += capacity;
  }
  if (total_capacity < num_bricks) {
    return ResourceExhaustedError(
        "file needs " + std::to_string(num_bricks) +
        " bricks but servers advertise space for " +
        std::to_string(total_capacity));
  }
  for (std::size_t k = 0; k < performance.size(); ++k) {
    if (performance[k] == 0) {
      return InvalidArgumentError("server " + std::to_string(k) +
                                  " performance number must be >= 1");
    }
  }
  BrickDistribution dist;
  dist.brick_to_server_.resize(num_bricks);
  dist.server_bricks_.resize(performance.size());
  std::vector<std::uint64_t> accumulated(performance.size(), 0);
  std::vector<std::uint64_t> remaining = capacity_bricks;
  for (std::uint64_t brick = 0; brick < num_bricks; ++brick) {
    std::size_t best = performance.size();
    for (std::size_t k = 0; k < performance.size(); ++k) {
      if (remaining[k] == 0) continue;
      if (best == performance.size() ||
          accumulated[k] + performance[k] <
              accumulated[best] + performance[best]) {
        best = k;
      }
    }
    // total_capacity >= num_bricks guarantees a candidate exists.
    accumulated[best] += performance[best];
    --remaining[best];
    dist.brick_to_server_[brick] = static_cast<ServerId>(best);
    dist.server_bricks_[best].push_back(brick);
  }
  DPFS_RETURN_IF_ERROR(dist.Finalize(num_bricks));
  return dist;
}

Result<BrickDistribution> BrickDistribution::Create(
    PlacementPolicy policy, std::uint64_t num_bricks,
    const std::vector<std::uint32_t>& performance,
    const std::vector<std::uint64_t>& capacity_bricks) {
  switch (policy) {
    case PlacementPolicy::kRoundRobin:
      return RoundRobin(num_bricks,
                        static_cast<std::uint32_t>(performance.size()));
    case PlacementPolicy::kGreedy:
      return Greedy(num_bricks, performance);
    case PlacementPolicy::kCapacityAware:
      return CapacityAware(num_bricks, performance, capacity_bricks);
  }
  return InvalidArgumentError("unknown placement policy");
}

Result<BrickDistribution> BrickDistribution::FromBrickLists(
    std::uint64_t num_bricks, std::vector<std::vector<BrickId>> server_bricks) {
  BrickDistribution dist;
  dist.server_bricks_ = std::move(server_bricks);
  dist.brick_to_server_.resize(num_bricks);
  for (std::size_t server = 0; server < dist.server_bricks_.size(); ++server) {
    for (const BrickId brick : dist.server_bricks_[server]) {
      if (brick < num_bricks) {
        dist.brick_to_server_[brick] = static_cast<ServerId>(server);
      }
    }
  }
  DPFS_RETURN_IF_ERROR(dist.Finalize(num_bricks));
  return dist;
}

std::string BrickDistribution::EncodeBrickList(
    const std::vector<BrickId>& bricks) {
  std::string out;
  for (std::size_t i = 0; i < bricks.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(bricks[i]);
  }
  return out;
}

Result<std::vector<BrickId>> BrickDistribution::DecodeBrickList(
    std::string_view text) {
  std::vector<BrickId> bricks;
  if (TrimWhitespace(text).empty()) return bricks;
  for (const std::string& token : SplitString(text, ',')) {
    DPFS_ASSIGN_OR_RETURN(const std::int64_t value, ParseInt64(token));
    if (value < 0) {
      return InvalidArgumentError("negative brick id in bricklist");
    }
    bricks.push_back(static_cast<BrickId>(value));
  }
  return bricks;
}

}  // namespace dpfs::layout
