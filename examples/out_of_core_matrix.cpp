// Out-of-core matrix access with multidimensional striping — the paper's
// §3.2 argument, demonstrated with real data movement.
//
// A dim x dim matrix of floats lives in DPFS, too big (pretend) for any one
// node's memory. A consumer needs column panels (the access pattern of
// matrix multiplication, the paper's example). We store the matrix twice —
// once linear, once multidim — and read the same panels from both, printing
// the request/transfer amplification the striping choice causes. Both reads
// must, of course, agree.
//
//   $ ./out_of_core_matrix [--dim 1024] [--tile 128] [--panels 4]
#include <cstdio>

#include "common/options.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/dpfs.h"

namespace {

using namespace dpfs;

Bytes RandomMatrix(std::uint64_t elements, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Bytes data(elements * sizeof(float));
  for (std::uint64_t i = 0; i < elements; ++i) {
    const float v = static_cast<float>(rng.NextDouble());
    std::memcpy(data.data() + i * sizeof(float), &v, sizeof(float));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::Parse(argc, argv).value();
  const auto dim = static_cast<std::uint64_t>(opts.GetInt("dim", 1024));
  const auto tile = static_cast<std::uint64_t>(opts.GetInt("tile", 128));
  const auto panels = static_cast<std::uint64_t>(opts.GetInt("panels", 4));

  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<client::FileSystem> fs = cluster.value()->fs();

  // The producer writes the matrix under both striping methods.
  const Bytes matrix = RandomMatrix(dim * dim, 2026);
  const layout::Region whole{{0, 0}, {dim, dim}};

  client::CreateOptions linear_create;
  linear_create.level = layout::FileLevel::kLinear;
  linear_create.element_size = sizeof(float);
  linear_create.array_shape = {dim, dim};
  linear_create.brick_bytes = 64 * 1024;
  auto linear = fs->Create("/A.linear", linear_create);

  client::CreateOptions md_create;
  md_create.level = layout::FileLevel::kMultidim;
  md_create.element_size = sizeof(float);
  md_create.array_shape = {dim, dim};
  md_create.brick_shape = {tile, tile};
  auto multidim = fs->Create("/A.multidim", md_create);

  if (!linear.ok() || !multidim.ok()) {
    std::fprintf(stderr, "create failed\n");
    return 1;
  }
  if (!fs->WriteRegion(*linear, whole, matrix).ok() ||
      !fs->WriteRegion(*multidim, whole, matrix).ok()) {
    std::fprintf(stderr, "matrix store failed\n");
    return 1;
  }
  std::printf("stored %llu x %llu float matrix twice: linear (64 KB bricks) "
              "and multidim (%llux%llu tiles)\n\n",
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(tile),
              static_cast<unsigned long long>(tile));

  // The consumer streams column panels from both copies.
  const std::uint64_t panel_width = dim / panels;
  std::printf("%-8s %12s %14s %14s %12s\n", "panel", "level", "requests",
              "transferred", "time");
  bool all_match = true;
  for (std::uint64_t p = 0; p < panels; ++p) {
    const layout::Region panel{{0, p * panel_width}, {dim, panel_width}};
    Bytes from_linear(panel.num_elements() * sizeof(float));
    Bytes from_multidim(from_linear.size());

    client::IoReport linear_report;
    WallTimer linear_timer;
    if (!fs->ReadRegion(*linear, panel, from_linear, {}, &linear_report)
             .ok()) {
      std::fprintf(stderr, "linear panel read failed\n");
      return 1;
    }
    const double linear_ms = linear_timer.ElapsedMillis();

    client::IoReport md_report;
    WallTimer md_timer;
    if (!fs->ReadRegion(*multidim, panel, from_multidim, {}, &md_report)
             .ok()) {
      std::fprintf(stderr, "multidim panel read failed\n");
      return 1;
    }
    const double md_ms = md_timer.ElapsedMillis();

    all_match = all_match && from_linear == from_multidim;
    std::printf("%-8llu %12s %14zu %14s %9.1f ms\n",
                static_cast<unsigned long long>(p), "linear",
                linear_report.requests,
                FormatByteSize(linear_report.transfer_bytes).c_str(),
                linear_ms);
    std::printf("%-8s %12s %14zu %14s %9.1f ms\n", "", "multidim",
                md_report.requests,
                FormatByteSize(md_report.transfer_bytes).c_str(), md_ms);
  }
  std::printf("\npanel contents from both striping methods %s\n",
              all_match ? "agree" : "DISAGREE");
  std::printf("multidim tiles turn the column-panel pathology (whole-brick "
              "reads, mostly discarded)\ninto full-brick useful transfers — "
              "the §3.2 argument, with real bytes.\n");
  return all_match ? 0 : 1;
}
