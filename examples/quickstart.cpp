// Quickstart: boot a 4-server DPFS cluster in-process, create a striped
// file, write and read it back over real TCP, and inspect the metadata.
//
//   $ ./quickstart [--servers 4] [--megabytes 8]
#include <cstdio>
#include <numeric>

#include "common/options.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/dpfs.h"

int main(int argc, char** argv) {
  using namespace dpfs;
  const Options opts = Options::Parse(argc, argv).value();
  const auto servers = static_cast<std::uint32_t>(opts.GetInt("servers", 4));
  const std::uint64_t megabytes =
      static_cast<std::uint64_t>(opts.GetInt("megabytes", 8));

  // 1. Start a local cluster: N I/O servers + metadata database.
  core::ClusterOptions cluster_options;
  cluster_options.num_servers = servers;
  Result<std::unique_ptr<core::LocalCluster>> cluster =
      core::LocalCluster::Start(std::move(cluster_options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<client::FileSystem> fs = cluster.value()->fs();
  std::printf("started %u I/O servers under %s\n", servers,
              cluster.value()->root().string().c_str());

  // 2. Create a linear file, striped round-robin with 64 KB bricks — the
  //    hint structure is where you would pick another level (§6).
  client::CreateOptions create;
  create.level = layout::FileLevel::kLinear;
  create.total_bytes = megabytes << 20;
  create.brick_bytes = 64 * 1024;
  Result<client::FileHandle> handle = fs->Create("/demo.bin", create);
  if (!handle.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 handle.status().ToString().c_str());
    return 1;
  }
  std::printf("created /demo.bin: %llu bricks of %llu bytes over %u servers\n",
              static_cast<unsigned long long>(handle->map.num_bricks()),
              static_cast<unsigned long long>(handle->map.brick_bytes()),
              handle->record.distribution.num_servers());

  // 3. Write a recognizable pattern and read it back.
  Bytes data(create.total_bytes);
  std::iota(data.begin(), data.end(), 0);
  client::IoReport write_report;
  WallTimer write_timer;
  if (const Status status =
          fs->WriteBytes(*handle, 0, data, {}, &write_report);
      !status.ok()) {
    std::fprintf(stderr, "write failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s in %.1f ms (%zu combined requests)\n",
              FormatByteSize(data.size()).c_str(),
              write_timer.ElapsedMillis(), write_report.requests);

  Bytes restored(data.size());
  WallTimer read_timer;
  if (const Status status = fs->ReadBytes(*handle, 0, restored);
      !status.ok()) {
    std::fprintf(stderr, "read failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("read back %s in %.1f ms — %s\n",
              FormatByteSize(restored.size()).c_str(),
              read_timer.ElapsedMillis(),
              restored == data ? "contents verified" : "MISMATCH");

  // 4. Peek at the metadata the way the paper's Fig 10 shows it (embedded
  // metadata only — a remote-metadata client has no local database).
  dpfs::client::MetadataManager& meta = *fs->embedded_metadata();
  const auto attrs =
      meta.db().Execute("SELECT filename, size, filelevel "
                        "FROM DPFS_FILE_ATTR");
  if (attrs.ok()) {
    std::printf("\nDPFS_FILE_ATTR:\n%s", attrs.value().ToString().c_str());
  }
  const auto dist = meta.db().Execute(
      "SELECT server, bricklist FROM DPFS_FILE_DISTRIBUTION "
      "WHERE filename = '/demo.bin' ORDER BY server LIMIT 2");
  if (dist.ok()) {
    std::printf("\nDPFS_FILE_DISTRIBUTION (first two rows):\n%s",
                dist.value().ToString().c_str());
  }
  return restored == data ? 0 : 1;
}
