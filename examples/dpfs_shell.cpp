// Interactive DPFS shell (§7): boots a local cluster and drops you into the
// UNIX-style command interface. Pipe a script on stdin for batch use.
//
//   $ ./dpfs_shell [--servers 4]
//   dpfs:/> mkdir /home
//   dpfs:/> import ./results.dat /home/results.dat
//   dpfs:/> ls -l /home
//   dpfs:/> export /home/results.dat ./roundtrip.dat
//   dpfs:/> exit
#include <cstdio>
#include <iostream>
#include <string>

#include "common/options.h"
#include "core/dpfs.h"

int main(int argc, char** argv) {
  using namespace dpfs;
  const Options opts = Options::Parse(argc, argv).value();
  const auto servers = static_cast<std::uint32_t>(opts.GetInt("servers", 4));

  core::ClusterOptions cluster_options;
  cluster_options.num_servers = servers;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster start failed: %s\n",
                 cluster.status().ToString().c_str());
    return 1;
  }
  shell::Shell shell(cluster.value()->fs());

  const bool interactive = isatty(fileno(stdin)) != 0;
  if (interactive) {
    std::printf("DPFS shell — %u I/O servers, storage under %s\n", servers,
                cluster.value()->root().string().c_str());
    std::printf("type 'help' for commands, 'exit' to quit\n");
  }

  std::string line;
  while (true) {
    if (interactive) {
      std::printf("dpfs:%s> ", shell.cwd().c_str());
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (line == "exit" || line == "quit") break;
    const Status status = shell.Execute(line, std::cout);
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
  }
  return 0;
}
