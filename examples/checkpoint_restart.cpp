// Checkpoint/restart with array-level striping — the paper's §3.3
// motivating scenario.
//
// A simulated stencil application runs on P compute threads arranged in a
// (BLOCK,BLOCK) grid. Every K iterations it dumps the global array to a
// DPFS array-level file: each process writes its chunk as exactly one brick
// in one request. The run is then "killed" and restarted from the last
// checkpoint, and every process reads its chunk back in one request.
//
//   $ ./checkpoint_restart [--processes 4] [--dim 512] [--steps 3]
#include <cmath>
#include <cstdio>
#include <thread>

#include "common/options.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/dpfs.h"

namespace {

using namespace dpfs;

/// The application state owned by one process: its chunk of a dim x dim
/// array of doubles.
struct ProcessState {
  layout::Region chunk;
  std::vector<double> values;
};

/// One Jacobi-flavoured smoothing step on the local chunk (edges clamped to
/// the chunk — this is a stand-in workload, not a full halo exchange).
void SmoothStep(ProcessState& state) {
  const std::uint64_t rows = state.chunk.extent[0];
  const std::uint64_t cols = state.chunk.extent[1];
  std::vector<double> next(state.values.size());
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      const auto at = [&](std::uint64_t rr, std::uint64_t cc) {
        return state.values[rr * cols + cc];
      };
      double sum = at(r, c);
      int count = 1;
      if (r > 0) { sum += at(r - 1, c); ++count; }
      if (r + 1 < rows) { sum += at(r + 1, c); ++count; }
      if (c > 0) { sum += at(r, c - 1); ++count; }
      if (c + 1 < cols) { sum += at(r, c + 1); ++count; }
      next[r * cols + c] = sum / count;
    }
  }
  state.values = std::move(next);
}

ByteSpan AsByteSpan(const std::vector<double>& values) {
  return AsBytes(values.data(), values.size() * sizeof(double));
}

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::Parse(argc, argv).value();
  const auto processes =
      static_cast<std::uint64_t>(opts.GetInt("processes", 4));
  const auto dim = static_cast<std::uint64_t>(opts.GetInt("dim", 512));
  const auto steps = static_cast<int>(opts.GetInt("steps", 3));

  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options));
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }
  const std::shared_ptr<client::FileSystem> fs = cluster.value()->fs();

  // Create the checkpoint file at the array level: one chunk per process,
  // conveyed through the hint structure.
  const layout::HpfPattern pattern =
      layout::HpfPattern::Parse("(BLOCK,BLOCK)").value();
  client::CreateOptions create;
  create.level = layout::FileLevel::kArray;
  create.element_size = sizeof(double);
  create.array_shape = {dim, dim};
  create.pattern = pattern;
  create.num_chunks = processes;
  auto created = fs->Create("/ckpt.dpfs", create);
  if (!created.ok()) {
    std::fprintf(stderr, "create: %s\n", created.status().ToString().c_str());
    return 1;
  }
  layout::ProcessGrid grid;
  grid.grid = created->meta().chunk_grid;
  std::printf("checkpoint file: %llu x %llu doubles, %llu chunks (grid",
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(processes));
  for (const std::uint64_t g : grid.grid) {
    std::printf(" %llu", static_cast<unsigned long long>(g));
  }
  std::printf(")\n");

  // --- The "run": P threads compute and periodically checkpoint. ---------
  std::vector<ProcessState> states(processes);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  WallTimer run_timer;
  for (std::uint64_t rank = 0; rank < processes; ++rank) {
    threads.emplace_back([&, rank] {
      ProcessState& state = states[rank];
      state.chunk =
          layout::ChunkForProcess({dim, dim}, pattern, grid, rank).value();
      state.values.assign(state.chunk.num_elements(), 0.0);
      // Deterministic initial condition: a bump keyed by global coords.
      for (std::uint64_t r = 0; r < state.chunk.extent[0]; ++r) {
        for (std::uint64_t c = 0; c < state.chunk.extent[1]; ++c) {
          const double x = static_cast<double>(state.chunk.lower[0] + r);
          const double y = static_cast<double>(state.chunk.lower[1] + c);
          state.values[r * state.chunk.extent[1] + c] =
              std::sin(x / 64.0) * std::cos(y / 64.0);
        }
      }
      client::FileHandle handle = fs->Open("/ckpt.dpfs").value();
      handle.client_id = static_cast<std::uint32_t>(rank);
      for (int step = 0; step < steps; ++step) {
        SmoothStep(state);
        client::IoReport report;
        const Status status = fs->WriteRegion(
            handle, state.chunk, AsByteSpan(state.values), {}, &report);
        if (!status.ok() || report.requests != 1) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (failures.load() != 0) {
    std::fprintf(stderr, "checkpointing failed\n");
    return 1;
  }
  std::printf("%d checkpoint rounds by %llu processes in %.1f ms "
              "(1 request per process per dump)\n",
              steps, static_cast<unsigned long long>(processes),
              run_timer.ElapsedMillis());

  // --- The "restart": fresh threads recover their chunks. ----------------
  WallTimer restart_timer;
  std::vector<std::thread> restarted;
  std::atomic<int> mismatches{0};
  for (std::uint64_t rank = 0; rank < processes; ++rank) {
    restarted.emplace_back([&, rank] {
      client::FileHandle handle = fs->Open("/ckpt.dpfs").value();
      handle.client_id = static_cast<std::uint32_t>(rank);
      const layout::Region chunk =
          layout::ChunkForProcess({dim, dim}, pattern, grid, rank).value();
      std::vector<double> restored(chunk.num_elements());
      client::IoReport report;
      const Status status = fs->ReadRegion(
          handle, chunk,
          MutableByteSpan(reinterpret_cast<std::uint8_t*>(restored.data()),
                          restored.size() * sizeof(double)),
          {}, &report);
      if (!status.ok() || report.requests != 1 ||
          restored != states[rank].values) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : restarted) t.join();
  std::printf("restart read %s in %.1f ms — %s\n",
              FormatByteSize(dim * dim * sizeof(double)).c_str(),
              restart_timer.ElapsedMillis(),
              mismatches.load() == 0 ? "all chunks verified"
                                     : "VERIFICATION FAILED");
  return mismatches.load() == 0 ? 0 : 1;
}
