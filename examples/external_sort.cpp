// Out-of-core external merge sort on DPFS — the classic parallel-I/O
// workload the related-work systems (PASSION, Galley) were built for.
//
// A dataset of random u32 keys lives in a DPFS linear file, "too big" for
// memory (a memory budget is enforced). Phase 1 sorts budget-sized chunks in
// parallel threads and writes them back as sorted runs. Phase 2 streams a
// k-way merge into a second DPFS file with budget-bounded buffers. The
// result is verified sorted and checksum-identical to the input multiset.
//
//   $ ./external_sort [--keys 1048576] [--budget-keys 65536] [--threads 4]
#include <algorithm>
#include <cstdio>
#include <queue>
#include <thread>

#include "common/options.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/dpfs.h"

namespace {

using namespace dpfs;

struct KeyIo {
  client::FileSystem& fs;
  client::FileHandle& handle;

  std::vector<std::uint32_t> Read(std::uint64_t first, std::uint64_t count) {
    std::vector<std::uint32_t> keys(count);
    const Status status = fs.ReadBytes(
        handle, first * sizeof(std::uint32_t),
        MutableByteSpan(reinterpret_cast<std::uint8_t*>(keys.data()),
                        count * sizeof(std::uint32_t)));
    if (!status.ok()) {
      std::fprintf(stderr, "read: %s\n", status.ToString().c_str());
      std::abort();
    }
    return keys;
  }

  void Write(std::uint64_t first, const std::vector<std::uint32_t>& keys) {
    const Status status = fs.WriteBytes(
        handle, first * sizeof(std::uint32_t),
        AsBytes(keys.data(), keys.size() * sizeof(std::uint32_t)));
    if (!status.ok()) {
      std::fprintf(stderr, "write: %s\n", status.ToString().c_str());
      std::abort();
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::Parse(argc, argv).value();
  const auto total_keys =
      static_cast<std::uint64_t>(opts.GetInt("keys", 1 << 20));
  const auto budget_keys = std::min<std::uint64_t>(
      total_keys, static_cast<std::uint64_t>(opts.GetInt("budget-keys",
                                                         1 << 16)));
  const auto threads = static_cast<std::uint32_t>(opts.GetInt("threads", 4));
  const std::uint64_t bytes = total_keys * sizeof(std::uint32_t);

  core::ClusterOptions cluster_options;
  cluster_options.num_servers = 4;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();
  if (const Status status = fs->metadata().MakeDirectory("/sort");
      !status.ok()) {
    std::fprintf(stderr, "mkdir: %s\n", status.ToString().c_str());
    return 1;
  }

  client::CreateOptions create;
  create.total_bytes = bytes;
  create.brick_bytes = 256 * 1024;
  client::FileHandle input = fs->Create("/sort/in", create).value();
  client::FileHandle output = fs->Create("/sort/out", create).value();

  // --- Generate the unsorted dataset, budget-sized slab at a time. --------
  std::printf("external sort: %llu keys (%s), memory budget %llu keys, "
              "%u sort threads\n",
              static_cast<unsigned long long>(total_keys),
              FormatByteSize(bytes).c_str(),
              static_cast<unsigned long long>(budget_keys), threads);
  std::uint64_t input_checksum = 0;
  {
    KeyIo io{*fs, input};
    SplitMix64 rng(7);
    for (std::uint64_t first = 0; first < total_keys; first += budget_keys) {
      const std::uint64_t count =
          std::min(budget_keys, total_keys - first);
      std::vector<std::uint32_t> slab(count);
      for (std::uint32_t& key : slab) {
        key = static_cast<std::uint32_t>(rng.NextU64());
        input_checksum += key;
      }
      io.Write(first, slab);
    }
  }

  // --- Phase 1: sort runs of budget_keys in parallel threads. -------------
  WallTimer timer;
  const std::uint64_t num_runs = layout::CeilDiv(total_keys, budget_keys);
  {
    std::atomic<std::uint64_t> next_run{0};
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        client::FileHandle handle = fs->Open("/sort/in").value();
        handle.client_id = t;
        KeyIo io{*fs, handle};
        while (true) {
          const std::uint64_t run = next_run.fetch_add(1);
          if (run >= num_runs) return;
          const std::uint64_t first = run * budget_keys;
          const std::uint64_t count =
              std::min(budget_keys, total_keys - first);
          std::vector<std::uint32_t> keys = io.Read(first, count);
          std::sort(keys.begin(), keys.end());
          io.Write(first, keys);
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  std::printf("phase 1: %llu sorted runs in %.1f ms\n",
              static_cast<unsigned long long>(num_runs),
              timer.ElapsedMillis());

  // --- Phase 2: k-way merge with budget-bounded buffers. ------------------
  timer.Reset();
  {
    client::FileHandle in_handle = fs->Open("/sort/in").value();
    KeyIo in_io{*fs, in_handle};
    KeyIo out_io{*fs, output};
    const std::uint64_t buffer_keys =
        std::max<std::uint64_t>(1, budget_keys / (num_runs + 1));

    struct RunCursor {
      std::uint64_t next = 0;   // absolute key index of the buffer head
      std::uint64_t end = 0;    // absolute end of the run
      std::vector<std::uint32_t> buffer;
      std::size_t pos = 0;
    };
    std::vector<RunCursor> cursors(num_runs);
    const auto refill = [&](RunCursor& cursor) {
      const std::uint64_t count =
          std::min<std::uint64_t>(buffer_keys, cursor.end - cursor.next);
      cursor.buffer = in_io.Read(cursor.next, count);
      cursor.next += count;
      cursor.pos = 0;
    };
    using HeapItem = std::pair<std::uint32_t, std::size_t>;  // key, run
    std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
    for (std::uint64_t run = 0; run < num_runs; ++run) {
      cursors[run].next = run * budget_keys;
      cursors[run].end = std::min(total_keys, (run + 1) * budget_keys);
      refill(cursors[run]);
      heap.push({cursors[run].buffer[0], run});
      cursors[run].pos = 1;
    }

    std::vector<std::uint32_t> out_buffer;
    out_buffer.reserve(buffer_keys);
    std::uint64_t out_first = 0;
    while (!heap.empty()) {
      const auto [key, run] = heap.top();
      heap.pop();
      out_buffer.push_back(key);
      if (out_buffer.size() == buffer_keys) {
        out_io.Write(out_first, out_buffer);
        out_first += out_buffer.size();
        out_buffer.clear();
      }
      RunCursor& cursor = cursors[run];
      if (cursor.pos == cursor.buffer.size()) {
        if (cursor.next < cursor.end) refill(cursor);
        else continue;
      }
      heap.push({cursor.buffer[cursor.pos], run});
      ++cursor.pos;
    }
    if (!out_buffer.empty()) out_io.Write(out_first, out_buffer);
  }
  std::printf("phase 2: merged in %.1f ms\n", timer.ElapsedMillis());

  // --- Verify: sorted, and the same multiset (via checksum). --------------
  {
    client::FileHandle handle = fs->Open("/sort/out").value();
    KeyIo io{*fs, handle};
    std::uint64_t checksum = 0;
    std::uint32_t previous = 0;
    bool sorted = true;
    for (std::uint64_t first = 0; first < total_keys; first += budget_keys) {
      const std::uint64_t count =
          std::min(budget_keys, total_keys - first);
      const std::vector<std::uint32_t> slab = io.Read(first, count);
      for (const std::uint32_t key : slab) {
        sorted = sorted && key >= previous;
        previous = key;
        checksum += key;
      }
    }
    if (!sorted || checksum != input_checksum) {
      std::fprintf(stderr, "VERIFICATION FAILED (sorted=%d, checksum %s)\n",
                   sorted, checksum == input_checksum ? "ok" : "mismatch");
      return 1;
    }
    std::printf("verified: %llu keys sorted, checksum matches input\n",
                static_cast<unsigned long long>(total_keys));
  }
  return 0;
}
