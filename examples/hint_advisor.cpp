// Hint advisor: which file level should you ask for?
//
// §3.3 says the file system cannot pick the striping method by itself —
// "only the user has the best picture of how her data will be utilized".
// This tool closes that loop: describe the array and the expected access
// pattern, and it uses the real DPFS planner plus the performance model to
// predict bandwidth for every file level, then recommends a hint.
//
//   $ ./hint_advisor [--dim 32768] [--clients 8] [--servers 4]
//                    [--pattern "(*,BLOCK)"] [--class class1]
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "layout/hpf.h"
#include "layout/plan.h"
#include "simnet/replay.h"

namespace {

using namespace dpfs;

struct Candidate {
  std::string name;
  std::string hint;
  layout::BrickMap map;
};

}  // namespace

int main(int argc, char** argv) {
  const Options opts = Options::Parse(argc, argv).value();
  const auto dim = static_cast<std::uint64_t>(opts.GetInt("dim", 32768));
  const auto clients = static_cast<std::uint32_t>(opts.GetInt("clients", 8));
  const auto servers = static_cast<std::uint32_t>(opts.GetInt("servers", 4));
  const std::string pattern_text = opts.GetString("pattern", "(*,BLOCK)");
  const std::string class_name = opts.GetString("class", "class1");

  const Result<layout::HpfPattern> pattern =
      layout::HpfPattern::Parse(pattern_text);
  if (!pattern.ok()) {
    std::fprintf(stderr, "bad --pattern: %s\n",
                 pattern.status().ToString().c_str());
    return 2;
  }
  const Result<simnet::StorageClassModel> model =
      simnet::StorageClassByName(class_name);
  if (!model.ok()) {
    std::fprintf(stderr, "bad --class: %s\n",
                 model.status().ToString().c_str());
    return 2;
  }

  const layout::Shape array = {dim, dim};
  const layout::ProcessGrid grid =
      layout::ProcessGrid::Auto(clients, pattern->num_block_dims());
  const Result<std::vector<layout::Region>> chunks =
      layout::AllChunks(array, *pattern, grid);
  if (!chunks.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 chunks.status().ToString().c_str());
    return 1;
  }

  std::printf("workload: %llu x %llu bytes, %u clients accessing %s, "
              "%u %s servers\n\n",
              static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(dim), clients,
              pattern->ToString().c_str(), servers, class_name.c_str());

  std::vector<Candidate> candidates;
  candidates.push_back(
      {"linear", "level=linear brick_bytes=65536",
       layout::BrickMap::LinearArray(array, 1, 64 * 1024).value()});
  for (const std::uint64_t tile : {64ull, 256ull, 1024ull}) {
    if (tile <= dim) {
      candidates.push_back(
          {"multidim " + std::to_string(tile) + "x" + std::to_string(tile),
           "level=multidim brick_shape=" + std::to_string(tile) + "," +
               std::to_string(tile),
           layout::BrickMap::Multidim(array, {tile, tile}, 1).value()});
    }
  }
  const Result<layout::BrickMap> array_map =
      layout::BrickMap::Array(array, *pattern, grid, 1);
  if (array_map.ok()) {
    candidates.push_back({"array " + pattern->ToString(),
                          "level=array pattern=" + pattern->ToString(),
                          array_map.value()});
  }

  std::printf("%-20s %14s %12s %12s\n", "candidate", "bandwidth", "requests",
              "wire-eff");
  double best_bandwidth = 0;
  std::string best_hint;
  std::string best_name;
  for (const Candidate& candidate : candidates) {
    const auto dist = layout::BrickDistribution::RoundRobin(
        candidate.map.num_bricks(), servers);
    if (!dist.ok()) continue;
    layout::PlanOptions plan_options;
    plan_options.combine = true;
    const auto plan = layout::PlanCollectiveAccess(
        candidate.map, dist.value(), chunks.value(), plan_options);
    if (!plan.ok()) continue;
    const auto replay = simnet::Replay(
        plan.value(),
        std::vector<simnet::StorageClassModel>(servers, model.value()));
    if (!replay.ok()) continue;
    const double bandwidth = replay.value().aggregate_bandwidth_MBps();
    std::printf("%-20s %9.2f MB/s %12zu %11.2f%%\n", candidate.name.c_str(),
                bandwidth, replay.value().total_requests,
                replay.value().efficiency() * 100);
    if (bandwidth > best_bandwidth) {
      best_bandwidth = bandwidth;
      best_hint = candidate.hint;
      best_name = candidate.name;
    }
  }
  std::printf("\nrecommended hint structure: %s   (%s, %.2f MB/s "
              "predicted)\n",
              best_hint.c_str(), best_name.c_str(), best_bandwidth);
  return 0;
}
