// The paper's motivating comparison (§1): shipping data to a remote storage
// hierarchy (the authors' HPSS at San Diego, reached over a WAN) vs
// aggregating the *local* unused disks into DPFS.
//
// Not one of the evaluation figures — the paper argues this qualitatively —
// but it quantifies the premise: even several slow local workstations beat
// one fast-but-far archive, and DPFS scales with every disk you scavenge.
#include <cstdio>

#include "bench/workloads.h"

namespace {

dpfs::Result<dpfs::layout::IoPlan> BuildPlan(std::uint32_t clients,
                                             std::uint32_t servers) {
  using namespace dpfs::layout;
  const std::uint64_t per_client = 64ull << 20;  // 64 MB checkpoint each
  DPFS_ASSIGN_OR_RETURN(
      const BrickMap map,
      BrickMap::Linear(per_client * clients, 256 * 1024));
  DPFS_ASSIGN_OR_RETURN(const BrickDistribution dist,
                        BrickDistribution::RoundRobin(map.num_bricks(),
                                                      servers));
  PlanOptions options;
  options.combine = true;
  options.direction = IoDirection::kWrite;
  IoPlan plan;
  for (std::uint32_t c = 0; c < clients; ++c) {
    DPFS_ASSIGN_OR_RETURN(
        ClientPlan client,
        PlanByteAccess(map, dist, c, c * per_client, per_client, options));
    plan.clients.push_back(std::move(client));
  }
  return plan;
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  constexpr std::uint32_t kClients = 8;

  std::printf("=== Motivation: remote archive vs locally-aggregated DPFS "
              "===\n");
  std::printf("%u compute nodes dumping 64 MB each (512 MB total), "
              "combined writes\n\n",
              kClients);
  std::printf("%-34s %14s %12s\n", "storage", "bandwidth", "dump time");

  const struct {
    const char* name;
    std::uint32_t servers;
    dpfs::simnet::StorageClassModel model;
  } rows[] = {
      {"remote archive (1 x WAN)", 1, dpfs::simnet::RemoteWan()},
      {"DPFS: 2 x class3 workstations", 2, dpfs::simnet::Class3()},
      {"DPFS: 4 x class3 workstations", 4, dpfs::simnet::Class3()},
      {"DPFS: 4 x class1 workstations", 4, dpfs::simnet::Class1()},
      {"DPFS: 8 x class1 workstations", 8, dpfs::simnet::Class1()},
  };
  for (const auto& row : rows) {
    const auto plan = BuildPlan(kClients, row.servers);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    const auto result =
        MustReplay(plan.value(), UniformServers(row.model, row.servers));
    std::printf("%-34s %9.2f MB/s %9.1f s\n", row.name,
                result.aggregate_bandwidth_MBps(), result.makespan_s);
  }
  std::printf("\nthe paper's premise: local scavenged disks, striped, beat "
              "the remote archive\nand keep scaling as servers are added.\n");
  return 0;
}
