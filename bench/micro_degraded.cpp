// Replication ablation (docs/REPLICATION.md): what redundancy costs and
// what failure costs.
//
// Three questions, answered on the simnet models with the real planner's
// request streams:
//   1. Write throughput vs replication factor R — every copy crosses the
//      wire, so application-bytes bandwidth should fall roughly as 1/R.
//   2. Degraded reads — with one server dead, the rank-1 remap serves the
//      same bytes from the survivors; reads succeed but cost more.
//   3. Latency sensitivity — a cross-site R=2 layout (half the servers
//      geo-wan class, failure domains = sites) pays the WAN on every
//      write, and a whole-site failover pays it on every read.
#include <cstdio>

#include "bench/workloads.h"

namespace {

using namespace dpfs::bench;
using dpfs::layout::IoDirection;

/// Application-bytes bandwidth: the bytes the app moved (one copy) over the
/// replay's makespan. ReplayResult::aggregate_bandwidth_MBps() would count
/// every replica's bytes as useful; the app only asked for one copy.
double AppBandwidthMBps(const ReplicationBenchConfig& config,
                        const dpfs::simnet::ReplayResult& result) {
  const double app_bytes = static_cast<double>(config.bytes_per_client) *
                           config.compute_nodes;
  return app_bytes / (1024.0 * 1024.0) / result.makespan_s;
}

}  // namespace

int main() {
  constexpr std::uint32_t kClients = 8;
  constexpr std::uint32_t kServers = 8;

  std::printf("=== Replication: throughput vs factor, healthy and degraded "
              "===\n");
  std::printf("%u clients x %llu MB each, %u class-1 servers, combined "
              "requests\n\n",
              kClients,
              static_cast<unsigned long long>((8ull << 20) >> 20), kServers);

  // ---- 1. write throughput vs R ------------------------------------------
  std::printf("-- write throughput vs replication factor --\n");
  std::printf("%3s %16s %14s %10s\n", "R", "app bandwidth", "wire bytes",
              "requests");
  ReplicationBenchConfig config;
  config.compute_nodes = kClients;
  config.io_nodes = kServers;
  config.performance.assign(kServers, 1);
  const auto servers = UniformServers(dpfs::simnet::Class1(), kServers);
  double local_r2_write_bw = 0;
  for (const std::uint32_t factor : {1u, 2u, 3u}) {
    config.spec.factor = factor;
    const ReplicatedWorkload workload =
        BuildReplicatedWorkload(config).value();
    const dpfs::layout::IoPlan plan =
        BuildReplicatedPlan(config, workload, IoDirection::kWrite).value();
    const dpfs::simnet::ReplayResult result = MustReplay(plan, servers);
    const double bw = AppBandwidthMBps(config, result);
    if (factor == 2) local_r2_write_bw = bw;
    std::printf("%3u %11.2f MB/s %11llu MB %10zu\n", factor, bw,
                static_cast<unsigned long long>(
                    plan.total_transfer_bytes() >> 20),
                plan.total_requests());
  }

  // ---- 2. reads: healthy vs degraded (one server dead) -------------------
  std::printf("\n-- R=2 reads: healthy vs degraded (server 0 dead, rank-1 "
              "remap) --\n");
  config.spec.factor = 2;
  const ReplicatedWorkload r2 = BuildReplicatedWorkload(config).value();
  const dpfs::layout::IoPlan healthy =
      BuildReplicatedPlan(config, r2, IoDirection::kRead).value();
  const dpfs::layout::IoPlan degraded =
      DegradeReadPlan(healthy, r2, /*dead=*/0).value();
  const double healthy_bw =
      AppBandwidthMBps(config, MustReplay(healthy, servers));
  const double degraded_bw =
      AppBandwidthMBps(config, MustReplay(degraded, servers));
  std::printf("%12s %11.2f MB/s\n", "healthy", healthy_bw);
  std::printf("%12s %11.2f MB/s  (%.0f%% of healthy, every byte served)\n",
              "degraded", degraded_bw, 100.0 * degraded_bw / healthy_bw);

  // ---- 3. cross-site replication over geo-wan ----------------------------
  // Site A: class-1 servers; site B: geo-wan mirrors. Failure domains are
  // the sites, so R=2 puts one copy on each side of the WAN.
  std::printf("\n-- cross-site R=2 (site A class-1, site B geo-wan) --\n");
  ReplicationBenchConfig geo = config;
  geo.spec.factor = 2;
  geo.spec.domains.assign(kServers, 0);
  std::vector<dpfs::simnet::StorageClassModel> geo_servers;
  for (std::uint32_t s = 0; s < kServers; ++s) {
    const bool site_b = s >= kServers / 2;
    geo.spec.domains[s] = site_b ? 1 : 0;
    geo_servers.push_back(site_b ? dpfs::simnet::GeoWan()
                                 : dpfs::simnet::Class1());
  }
  // §4.1 performance numbers see the WAN servers as slow, so greedy keeps
  // most primaries on site A; the domain constraint still forces every
  // brick's second copy across the WAN.
  geo.performance =
      dpfs::simnet::NormalizedPerformance(geo_servers, geo.brick_bytes);
  const ReplicatedWorkload geo_workload =
      BuildReplicatedWorkload(geo).value();
  const dpfs::layout::IoPlan geo_write =
      BuildReplicatedPlan(geo, geo_workload, IoDirection::kWrite).value();
  const double geo_write_bw =
      AppBandwidthMBps(geo, MustReplay(geo_write, geo_servers));
  std::printf("%22s %11.2f MB/s  (WAN ack on every write; single-site "
              "R=2 wrote %.2f)\n",
              "cross-site write", geo_write_bw, local_r2_write_bw);

  // Latency sensitivity: a whole-site outage (every site-A server dead)
  // remaps reads onto the rank-1 copies across the WAN. The provisioned
  // link keeps *bulk* (combined) reads flowing; per-brick requests pay the
  // 40 ms one-way latency each, synchronously — §4.2 combination is what
  // keeps WAN failover usable.
  std::printf("\n   reads across a whole-site failover, by access shape:\n");
  std::printf("%22s %14s %14s %9s\n", "", "healthy", "site-A down",
              "retained");
  for (const bool combine : {true, false}) {
    geo.combine = combine;
    const dpfs::layout::IoPlan healthy_geo =
        BuildReplicatedPlan(geo, geo_workload, IoDirection::kRead).value();
    dpfs::layout::IoPlan site_down = healthy_geo;
    for (dpfs::layout::ServerId dead = 0; dead < kServers / 2; ++dead) {
      site_down = DegradeReadPlan(site_down, geo_workload, dead).value();
    }
    const double healthy_bw_geo =
        AppBandwidthMBps(geo, MustReplay(healthy_geo, geo_servers));
    const double failover_bw_geo =
        AppBandwidthMBps(geo, MustReplay(site_down, geo_servers));
    std::printf("%22s %9.2f MB/s %9.2f MB/s %8.0f%%\n",
                combine ? "combined (bulk)" : "per-brick (64 KB)",
                healthy_bw_geo, failover_bw_geo,
                100.0 * failover_bw_geo / healthy_bw_geo);
  }
  return 0;
}
