// Micro-benchmark: noncontiguous access served three ways — whole-brick
// fetches, data sieving (one bounding-span transfer), and list I/O
// (kListRead/kListWrite) — over the PVFS list-I/O paper's vector and
// subarray patterns (Ching et al., docs/NONCONTIGUOUS_IO.md).
//
// The sweep varies access density (block/stride). Dense patterns favour
// sieving: the holes are small, and one contiguous transfer amortizes the
// per-fragment disk cost list I/O pays. Sparse patterns favour list I/O:
// the listed extents shrink while the sieve span does not. The crossover
// (recorded in EXPERIMENTS.md) falls where the extra hole bytes cost as
// much as one fragment seek per block.
#include <cstdio>

#include "bench/workloads.h"

namespace {

void PrintRow(const dpfs::bench::NoncontigConfig& config,
              const std::vector<dpfs::simnet::StorageClassModel>& servers) {
  using namespace dpfs::bench;
  double bw[3] = {};
  std::uint64_t wire[3] = {};
  for (const NoncontigStrategy strategy :
       {NoncontigStrategy::kWholeBrick, NoncontigStrategy::kSieve,
        NoncontigStrategy::kListIo}) {
    const auto plan = BuildNoncontigPlan(config, strategy);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      std::abort();
    }
    const auto result = MustReplay(plan.value(), servers);
    const int i = static_cast<int>(strategy);
    // Bandwidth over *useful* bytes: every strategy delivers the same
    // application payload, so useful-byte bandwidth is the fair metric.
    bw[i] = static_cast<double>(config.clients * config.count *
                                config.block) /
            (1024.0 * 1024.0) / result.makespan_s;
    wire[i] = result.transfer_bytes;
  }
  const double density = static_cast<double>(config.block) /
                         static_cast<double>(config.stride);
  std::printf("%8llu %8llu %8.3f %12.2f %12.2f %12.2f %10.1fx %9.1f%%\n",
              static_cast<unsigned long long>(config.block),
              static_cast<unsigned long long>(config.stride), density,
              bw[0], bw[1], bw[2], bw[2] / bw[0],
              100.0 * (1.0 - static_cast<double>(wire[2]) /
                                 static_cast<double>(wire[1])));
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  const auto servers = UniformServers(dpfs::simnet::Class1(), 4);

  std::printf("=== Micro: noncontiguous access — whole-brick vs sieve vs "
              "list I/O ===\n");
  std::printf("8 clients, 4 class-1 servers, 64 KB bricks; useful-byte "
              "MB/s\n\n");

  std::printf("-- vector pattern: 1024 blocks of 512 B, stride swept --\n");
  std::printf("%8s %8s %8s %12s %12s %12s %10s %9s\n", "block", "stride",
              "density", "whole-brick", "sieve", "list I/O", "vs-whole",
              "wire-saved");
  for (const std::uint64_t stride :
       {512ull, 1024ull, 2048ull, 4096ull, 8192ull, 16384ull, 32768ull}) {
    NoncontigConfig config;
    config.count = 1024;
    config.block = 512;
    config.stride = stride;
    PrintRow(config, servers);
  }

  std::printf("\n-- subarray pattern: 1024x1024 tile of an 8192-wide "
              "row-major byte array --\n");
  std::printf("%8s %8s %8s %12s %12s %12s %10s %9s\n", "block", "stride",
              "density", "whole-brick", "sieve", "list I/O", "vs-whole",
              "wire-saved");
  {
    NoncontigConfig config;
    config.count = 1024;   // rows of the tile
    config.block = 1024;   // tile columns (bytes)
    config.stride = 8192;  // full array row
    PrintRow(config, servers);
  }

  std::printf("\n(sieve reads the bounding span holes included; list I/O "
              "moves only listed bytes\n but pays one disk fragment per "
              "wire extent — the density sweep shows the crossover)\n");
  return 0;
}
