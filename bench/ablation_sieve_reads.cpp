// Ablation: the paper's whole-brick READ semantics vs sieve reads (fetch
// only the useful runs) — a DPFS extension.
//
// §3.2 assumes a partially-useful brick still crosses the wire whole
// ("the second half will be discarded"). Sieve reads trade that wasted
// bandwidth for per-fragment overhead at the disk. The crossover depends on
// how little of each brick is useful: column access through a linear file
// (tiny useful fraction) benefits enormously; multidim access (fully useful
// bricks) is unchanged by construction.
#include <cstdio>

#include "bench/workloads.h"

namespace {

dpfs::Result<dpfs::layout::IoPlan> BuildColumnPlan(std::uint64_t dim,
                                                   std::uint64_t columns,
                                                   bool whole_brick) {
  using namespace dpfs::layout;
  DPFS_ASSIGN_OR_RETURN(const BrickMap map,
                        BrickMap::LinearArray({dim, dim}, 1, 64 * 1024));
  DPFS_ASSIGN_OR_RETURN(const BrickDistribution dist,
                        BrickDistribution::RoundRobin(map.num_bricks(), 4));
  PlanOptions options;
  options.direction = IoDirection::kRead;
  options.combine = true;
  options.whole_brick_reads = whole_brick;
  IoPlan plan;
  for (std::uint32_t c = 0; c < 8; ++c) {
    const Region chunk{{0, c * columns}, {dim, columns}};
    DPFS_ASSIGN_OR_RETURN(ClientPlan client,
                          PlanRegionAccess(map, dist, c, chunk, options));
    plan.clients.push_back(std::move(client));
  }
  return plan;
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  constexpr std::uint64_t kDim = 16 * 1024;
  const auto servers = UniformServers(dpfs::simnet::Class1(), 4);

  std::printf("=== Ablation: whole-brick reads (paper) vs sieve reads "
              "(extension) ===\n");
  std::printf("8 clients reading column chunks of a %lluK x %lluK linear "
              "file, 64 KB bricks, 4 class-1 servers\n\n",
              static_cast<unsigned long long>(kDim / 1024),
              static_cast<unsigned long long>(kDim / 1024));
  std::printf("%10s %16s %16s %12s %12s\n", "columns", "whole-brick",
              "sieve", "wire-saved", "speedup");

  for (const std::uint64_t columns : {16ull, 64ull, 256ull, 1024ull,
                                      2048ull}) {
    const auto whole = BuildColumnPlan(kDim, columns, true);
    const auto sieve = BuildColumnPlan(kDim, columns, false);
    if (!whole.ok() || !sieve.ok()) {
      std::fprintf(stderr, "plan failed\n");
      return 1;
    }
    const auto result_whole = MustReplay(whole.value(), servers);
    const auto result_sieve = MustReplay(sieve.value(), servers);
    std::printf("%10llu %11.2f MB/s %11.2f MB/s %11.1f%% %11.2fx\n",
                static_cast<unsigned long long>(columns),
                result_whole.aggregate_bandwidth_MBps(),
                result_sieve.aggregate_bandwidth_MBps(),
                100.0 * (1.0 - static_cast<double>(
                                   result_sieve.transfer_bytes) /
                                   static_cast<double>(
                                       result_whole.transfer_bytes)),
                result_sieve.aggregate_bandwidth_MBps() /
                    result_whole.aggregate_bandwidth_MBps());
  }
  std::printf("\n(multidim files are unaffected: their bricks are fully "
              "useful for matching access patterns)\n");
  return 0;
}
