// Figure 12: as Figure 11 but with 16 compute nodes and 8 I/O nodes.
#include "bench/file_level_figure.h"

int main() {
  dpfs::bench::FileLevelConfig config;
  config.compute_nodes = 16;
  config.io_nodes = 8;
  dpfs::bench::RunFileLevelFigure(config, "Figure 12");
  return 0;
}
