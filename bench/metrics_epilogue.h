// Metrics snapshot epilogue for the bench harnesses.
//
// The figure numbers come from simnet replay (pure simulation, no sockets),
// which exercises the planner but none of the runtime hot paths. To make
// every bench run end with a *live* metrics snapshot — nonzero io_server
// per-opcode histograms, brick_cache hits/misses, metadb latencies — the
// epilogue drives a small real workload through an in-process LocalCluster
// (real TCP on loopback, real subfile I/O, real metadata transactions) and
// then prints the process-wide registry. How to read the output:
// docs/OBSERVABILITY.md.
#pragma once

#include <cstdio>
#include <numeric>

#include "common/metrics.h"
#include "core/dpfs.h"

namespace dpfs::bench {

/// Runs write + cold read + cached read against a 2-server cluster, then
/// prints the global metrics text snapshot between marker lines.
inline void PrintMetricsEpilogue() {
  const auto fail = [](const Status& status) {
    std::fprintf(stderr, "metrics epilogue workload failed: %s\n",
                 status.ToString().c_str());
  };

  {
    core::ClusterOptions options;
    options.num_servers = 2;
    Result<std::unique_ptr<core::LocalCluster>> cluster =
        core::LocalCluster::Start(std::move(options));
    if (!cluster.ok()) {
      fail(cluster.status());
      return;
    }
    const std::shared_ptr<client::FileSystem> fs = cluster.value()->fs();
    fs->EnableBrickCache(8ull << 20);

    client::CreateOptions create;
    create.total_bytes = 1ull << 20;
    create.brick_bytes = 64 * 1024;
    Result<client::FileHandle> handle =
        fs->Create("/bench_metrics_probe.bin", create);
    if (!handle.ok()) {
      fail(handle.status());
      return;
    }
    Bytes data(create.total_bytes);
    std::iota(data.begin(), data.end(), 0);
    Bytes readback(create.total_bytes);
    Status status = fs->WriteBytes(*handle, 0, data, {}, nullptr);
    // First read fills the brick cache over the wire; second is served from
    // it, so both brick_cache.misses and brick_cache.hits move.
    if (status.ok()) status = fs->ReadBytes(*handle, 0, readback);
    if (status.ok()) status = fs->ReadBytes(*handle, 0, readback);
    if (!status.ok()) {
      fail(status);
      return;
    }
  }  // cluster stops: session threads join before the snapshot is read

  std::printf("\n--- metrics snapshot (live LocalCluster probe; "
              "docs/OBSERVABILITY.md) ---\n");
  std::printf("%s", metrics::Registry::Global().TextSnapshot().c_str());
  std::printf("--- end metrics snapshot ---\n");
}

}  // namespace dpfs::bench
