// Macro stress bench on real hardware: a live cluster, many client threads,
// a random mix of region reads and writes on a shared multidim file —
// the full stack (planner → pool → TCP → fd-cached subfiles) under
// concurrency, with data verification at the end.
#include <cstdio>
#include <thread>

#include "common/metrics.h"
#include "common/options.h"
#include "common/strings.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/dpfs.h"

int main(int argc, char** argv) {
  using namespace dpfs;
  const Options opts = Options::Parse(argc, argv).value();
  const auto clients = static_cast<std::uint32_t>(opts.GetInt("clients", 8));
  const auto servers = static_cast<std::uint32_t>(opts.GetInt("servers", 4));
  const auto dim = static_cast<std::uint64_t>(opts.GetInt("dim", 512));
  const auto ops = static_cast<int>(opts.GetInt("ops", 200));

  core::ClusterOptions cluster_options;
  cluster_options.num_servers = servers;
  auto cluster = core::LocalCluster::Start(std::move(cluster_options)).value();
  auto fs = cluster->fs();

  client::CreateOptions create;
  create.level = layout::FileLevel::kMultidim;
  create.array_shape = {dim, dim};
  create.brick_shape = {dim / 8, dim / 8};
  auto handle = fs->Create("/stress.dpfs", create);
  if (!handle.ok()) {
    std::fprintf(stderr, "create: %s\n", handle.status().ToString().c_str());
    return 1;
  }
  // Seed the file so reads have defined contents.
  Bytes zero(dim * dim, 0);
  (void)fs->WriteRegion(*handle, {{0, 0}, {dim, dim}}, zero);

  std::printf("=== Macro: mixed random region I/O over real TCP ===\n");
  std::printf("%u clients x %d ops on a %llu x %llu multidim file, "
              "%u servers\n",
              clients, ops, static_cast<unsigned long long>(dim),
              static_cast<unsigned long long>(dim), servers);

  std::atomic<std::uint64_t> bytes_moved{0};
  std::atomic<int> failures{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (std::uint32_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      SplitMix64 rng(1000 + c);
      client::FileHandle h = fs->Open("/stress.dpfs").value();
      h.client_id = c;
      Bytes buffer;
      for (int op = 0; op < ops; ++op) {
        layout::Region region;
        region.lower = {rng.NextBelow(dim), rng.NextBelow(dim)};
        region.extent = {1 + rng.NextBelow(dim - region.lower[0]),
                         1 + rng.NextBelow(dim - region.lower[1])};
        buffer.resize(region.num_elements());
        client::IoOptions io;
        io.combine = rng.NextBelow(4) != 0;  // mostly combined
        Status status;
        if (rng.NextBelow(2) == 0) {
          for (std::uint8_t& b : buffer) {
            b = static_cast<std::uint8_t>(rng.NextU64());
          }
          status = fs->WriteRegion(h, region, buffer, io);
        } else {
          status = fs->ReadRegion(h, region, buffer, io);
        }
        if (!status.ok()) {
          failures.fetch_add(1);
          return;
        }
        bytes_moved.fetch_add(buffer.size());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();

  if (failures.load() != 0) {
    std::fprintf(stderr, "FAILED: %d client threads hit errors\n",
                 failures.load());
    return 1;
  }
  std::printf("moved %s in %.2f s  (%.1f MB/s application bytes, "
              "%llu server requests)\n",
              FormatByteSize(bytes_moved.load()).c_str(), seconds,
              static_cast<double>(bytes_moved.load()) / (1 << 20) / seconds,
              static_cast<unsigned long long>([&] {
                std::uint64_t total = 0;
                for (std::size_t s = 0; s < cluster->num_servers(); ++s) {
                  total += cluster->server(s).stats().requests.load();
                }
                return total;
              }()));

  // Verification: a full read through a fresh handle must succeed and agree
  // between combined and uncombined paths.
  Bytes a(dim * dim);
  Bytes b(dim * dim);
  client::IoOptions combined;
  combined.combine = true;
  client::IoOptions general;
  general.combine = false;
  client::FileHandle verify = fs->Open("/stress.dpfs").value();
  if (!fs->ReadRegion(verify, {{0, 0}, {dim, dim}}, a, combined).ok() ||
      !fs->ReadRegion(verify, {{0, 0}, {dim, dim}}, b, general).ok() ||
      a != b) {
    std::fprintf(stderr, "FAILED: post-stress verification mismatch\n");
    return 1;
  }
  std::printf("post-stress verification: combined and general reads agree\n");
  // The macro bench already drove a real cluster, so the registry is hot;
  // print it directly (no epilogue probe needed).
  std::printf("\n--- metrics snapshot (docs/OBSERVABILITY.md) ---\n%s"
              "--- end metrics snapshot ---\n",
              metrics::Registry::Global().TextSnapshot().c_str());
  return 0;
}
