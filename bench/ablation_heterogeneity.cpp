// Ablation: how the greedy/round-robin gap grows with storage
// heterogeneity.
//
// Fig 13/14 test one operating point (class-1 vs class-3, ~3x). Here we
// scale the slow class's link down by a factor r and give greedy the
// matching §4.1 performance numbers. Round-robin's makespan is gated by the
// slow servers, so its bandwidth should fall roughly as 1/r while greedy
// degrades gracefully.
#include <cstdio>

#include "bench/workloads.h"

int main() {
  using namespace dpfs::bench;
  constexpr std::uint32_t kClients = 8;
  constexpr std::uint32_t kServers = 8;

  std::printf("=== Ablation: greedy vs round-robin across heterogeneity "
              "ratios ===\n");
  std::printf("%u clients, %u servers (half fast, half slowed by r), "
              "combined reads\n\n",
              kClients, kServers);
  std::printf("%6s %14s %14s %10s\n", "ratio", "round-robin", "greedy",
              "speedup");

  for (const std::uint32_t ratio : {1u, 2u, 3u, 4u, 6u, 8u}) {
    // Build the server models: half class-1, half class-1 slowed r-fold.
    std::vector<dpfs::simnet::StorageClassModel> servers;
    for (std::uint32_t s = 0; s < kServers; ++s) {
      dpfs::simnet::StorageClassModel model = dpfs::simnet::Class1();
      if (s >= kServers / 2) {
        model.link_bytes_per_s /= ratio;
        model.disk_bytes_per_s /= ratio;
        model.name = "slowed";
      }
      servers.push_back(model);
    }
    StripingAlgConfig config;
    config.compute_nodes = kClients;
    config.io_nodes = kServers;
    config.performance =
        dpfs::simnet::NormalizedPerformance(servers, config.brick_bytes);

    double bandwidth[2] = {0, 0};
    const dpfs::layout::PlacementPolicy policies[2] = {
        dpfs::layout::PlacementPolicy::kRoundRobin,
        dpfs::layout::PlacementPolicy::kGreedy};
    for (int p = 0; p < 2; ++p) {
      const auto plan =
          BuildStripingAlgPlan(config, policies[p], /*combine=*/true,
                               dpfs::layout::IoDirection::kRead);
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      bandwidth[p] =
          MustReplay(plan.value(), servers).aggregate_bandwidth_MBps();
    }
    std::printf("%5ux %11.2f MB/s %11.2f MB/s %9.2fx\n", ratio, bandwidth[0],
                bandwidth[1], bandwidth[1] / bandwidth[0]);
  }
  return 0;
}
