// Ablation: request combination and schedule rotation as client count
// scales.
//
// §4.2 argues combination matters more as clients multiply (request floods
// and server-0 stampedes). We sweep compute nodes and report bandwidth for
// general, combined-unrotated, and combined-rotated request streams on the
// Fig 11 multidim workload.
#include <cstdio>

#include "bench/workloads.h"

namespace {

dpfs::Result<dpfs::layout::IoPlan> BuildPlan(std::uint32_t clients,
                                             bool combine, bool rotate) {
  using namespace dpfs::layout;
  const Shape array = {16 * 1024, 16 * 1024};
  DPFS_ASSIGN_OR_RETURN(const BrickMap map,
                        BrickMap::Multidim(array, {256, 256}, 1));
  DPFS_ASSIGN_OR_RETURN(const BrickDistribution dist,
                        BrickDistribution::RoundRobin(map.num_bricks(), 4));
  const HpfPattern pattern = HpfPattern::Parse("(*,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {clients};
  DPFS_ASSIGN_OR_RETURN(const std::vector<Region> chunks,
                        AllChunks(array, pattern, grid));
  PlanOptions options;
  options.direction = IoDirection::kRead;
  options.combine = combine;
  options.rotate_start = rotate;
  return PlanCollectiveAccess(map, dist, chunks, options);
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  std::printf("=== Ablation: request combination vs client count ===\n");
  std::printf("(*,BLOCK) reads on a 16Kx16K multidim file, 4 class-1 "
              "servers\n\n");
  std::printf("%8s %12s %16s %16s\n", "clients", "general",
              "combined", "combined+rotate");

  const auto servers = UniformServers(dpfs::simnet::Class1(), 4);
  for (const std::uint32_t clients : {2u, 4u, 8u, 16u, 32u}) {
    double bandwidth[3] = {0, 0, 0};
    const struct {
      bool combine;
      bool rotate;
    } variants[3] = {{false, false}, {true, false}, {true, true}};
    for (int v = 0; v < 3; ++v) {
      const auto plan =
          BuildPlan(clients, variants[v].combine, variants[v].rotate);
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }
      bandwidth[v] =
          MustReplay(plan.value(), servers).aggregate_bandwidth_MBps();
    }
    std::printf("%8u %9.2f MB/s %13.2f MB/s %13.2f MB/s\n", clients,
                bandwidth[0], bandwidth[1], bandwidth[2]);
  }
  return 0;
}
