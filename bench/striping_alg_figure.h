// Shared driver for the Fig 13 / Fig 14 striping-algorithm comparison.
//
// Half class-1 / half class-3 storage; each compute node writes then reads a
// contiguous 32 MB block of a shared linear file. Greedy placement gives the
// class-1 servers ~3x the bricks, so no client ends up gated on a slow
// server's long queue.
#pragma once

#include <cstdio>

#include "bench/metrics_epilogue.h"
#include "bench/workloads.h"

namespace dpfs::bench {

inline void RunStripingAlgFigure(std::uint32_t compute_nodes,
                                 std::uint32_t io_nodes, const char* figure) {
  StripingAlgConfig config;
  config.compute_nodes = compute_nodes;
  config.io_nodes = io_nodes;
  // Performance numbers per §4.1: class 1 → 1, class 3 → 3.
  config.performance.assign(io_nodes, 1);
  for (std::uint32_t s = io_nodes / 2; s < io_nodes; ++s) {
    config.performance[s] = 3;
  }
  const std::vector<simnet::StorageClassModel> servers =
      HalfClass1HalfClass3(io_nodes);

  std::printf("=== %s: Striping Algorithm Comparison ===\n", figure);
  std::printf("%u compute nodes, %u I/O nodes, half class-1 / half class-3, "
              "%llu MB per client\n\n",
              compute_nodes, io_nodes,
              static_cast<unsigned long long>(config.bytes_per_client >> 20));
  std::printf("%-16s %14s %14s\n", "variant", "round-robin", "greedy");

  const struct {
    const char* name;
    layout::IoDirection direction;
    bool combine;
  } rows[] = {
      {"Write", layout::IoDirection::kWrite, false},
      {"Combined Write", layout::IoDirection::kWrite, true},
      {"Read", layout::IoDirection::kRead, false},
      {"Combined Read", layout::IoDirection::kRead, true},
  };

  for (const auto& row : rows) {
    double bandwidth[2] = {0, 0};
    const layout::PlacementPolicy policies[2] = {
        layout::PlacementPolicy::kRoundRobin, layout::PlacementPolicy::kGreedy};
    for (int p = 0; p < 2; ++p) {
      const Result<layout::IoPlan> plan = BuildStripingAlgPlan(
          config, policies[p], row.combine, row.direction);
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return;
      }
      bandwidth[p] =
          MustReplay(plan.value(), servers).aggregate_bandwidth_MBps();
    }
    std::printf("%-16s %14.2f %14.2f\n", row.name, bandwidth[0],
                bandwidth[1]);
  }
  std::printf("\n");
  PrintMetricsEpilogue();
}

}  // namespace dpfs::bench
