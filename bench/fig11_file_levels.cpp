// Figure 11: I/O bandwidth (MB/s) of the three file levels, with and
// without request combination, on storage classes 1/2/3.
// 8 compute nodes, 4 I/O nodes, 32K x 32K byte array accessed (*,BLOCK);
// linear bricks 64 KB, multidim bricks 256x256, array chunks per HPF.
#include "bench/file_level_figure.h"

int main() {
  dpfs::bench::FileLevelConfig config;
  config.compute_nodes = 8;
  config.io_nodes = 4;
  dpfs::bench::RunFileLevelFigure(config, "Figure 11");
  return 0;
}
