// Figure 14: round-robin vs greedy striping, 16 compute nodes, 16 I/O
// nodes, half class-1 / half class-3 storage.
#include "bench/striping_alg_figure.h"

int main() {
  dpfs::bench::RunStripingAlgFigure(16, 16, "Figure 14");
  return 0;
}
