// Ablation: multidim tile-size sweep for the Fig 11 workload.
//
// The paper fixes the multidim tile at 256x256 without justifying it; this
// sweep shows the trade-off: tiny tiles explode request count (per-request
// overhead dominates), huge tiles over-fetch when a chunk only needs part of
// a tile column. The sweet spot sits where tile width divides the per-client
// chunk width.
#include <cstdio>

#include "bench/workloads.h"

int main() {
  using namespace dpfs::bench;
  FileLevelConfig config;
  config.compute_nodes = 8;
  config.io_nodes = 4;
  config.array_dim = 32 * 1024;

  std::printf("=== Ablation: multidim striping-unit size ===\n");
  std::printf("Fig 11 workload (8 clients, 4 servers, (*,BLOCK) on "
              "32Kx32K), class-1 storage, combined requests\n\n");
  std::printf("%8s %12s %12s %14s %12s\n", "tile", "brick-KB", "requests",
              "bandwidth", "wire-eff");

  for (const std::uint64_t tile : {32u, 64u, 128u, 256u, 512u, 1024u,
                                   4096u}) {
    config.md_tile = tile;
    const dpfs::Result<dpfs::layout::IoPlan> plan = BuildFileLevelPlan(
        config, Variant::kCombinedMultidim, dpfs::layout::IoDirection::kRead);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    const auto result =
        MustReplay(plan.value(), UniformServers(dpfs::simnet::Class1(),
                                                config.io_nodes));
    std::printf("%5llux%-4llu %10llu %12zu %11.2f MB/s %11.2f%%\n",
                static_cast<unsigned long long>(tile),
                static_cast<unsigned long long>(tile),
                static_cast<unsigned long long>(tile * tile / 1024),
                result.total_requests, result.aggregate_bandwidth_MBps(),
                result.efficiency() * 100.0);
  }
  return 0;
}
