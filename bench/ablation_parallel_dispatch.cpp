// Ablation: sequential request issue (the paper's client) vs parallel
// dispatch (extension) — and how a shared compute-side uplink caps both.
//
// The paper's client walks its combined requests one server at a time, so a
// single client never drives more than one server. Parallel dispatch sends
// every combined request at once. With few clients the difference is large;
// with many clients the servers are already saturated and it fades —
// and once the compute partition's shared uplink becomes the bottleneck
// (the SP2's situation), nothing on the client side matters.
#include <cstdio>

#include "bench/workloads.h"

namespace {

dpfs::Result<dpfs::layout::IoPlan> BuildPlan(std::uint32_t clients,
                                             bool parallel) {
  using namespace dpfs::layout;
  const Shape array = {16 * 1024, 16 * 1024};
  DPFS_ASSIGN_OR_RETURN(const BrickMap map,
                        BrickMap::Multidim(array, {256, 256}, 1));
  DPFS_ASSIGN_OR_RETURN(const BrickDistribution dist,
                        BrickDistribution::RoundRobin(map.num_bricks(), 4));
  const HpfPattern pattern = HpfPattern::Parse("(*,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {clients};
  DPFS_ASSIGN_OR_RETURN(const std::vector<Region> chunks,
                        AllChunks(array, pattern, grid));
  PlanOptions options;
  options.combine = true;
  options.parallel_dispatch = parallel;
  return PlanCollectiveAccess(map, dist, chunks, options);
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  const auto servers = UniformServers(dpfs::simnet::Class1(), 4);

  std::printf("=== Ablation: sequential vs parallel request dispatch ===\n");
  std::printf("(*,BLOCK) combined reads, 16Kx16K multidim file, 4 class-1 "
              "servers\n\n");
  std::printf("%8s %14s %14s %10s | %20s\n", "clients", "sequential",
              "parallel", "speedup", "parallel w/ 4MB/s uplink");

  for (const std::uint32_t clients : {1u, 2u, 4u, 8u, 16u}) {
    const auto seq = BuildPlan(clients, false);
    const auto par = BuildPlan(clients, true);
    if (!seq.ok() || !par.ok()) {
      std::fprintf(stderr, "plan failed\n");
      return 1;
    }
    const double t_seq =
        MustReplay(seq.value(), servers).aggregate_bandwidth_MBps();
    const double t_par =
        MustReplay(par.value(), servers).aggregate_bandwidth_MBps();
    dpfs::simnet::ReplayOptions uplink;
    uplink.client_uplink_bytes_per_s = 4.0 * 1024 * 1024;
    const auto capped =
        dpfs::simnet::Replay(par.value(), servers, uplink).value();
    std::printf("%8u %9.2f MB/s %9.2f MB/s %9.2fx | %15.2f MB/s\n", clients,
                t_seq, t_par, t_par / t_seq,
                capped.aggregate_bandwidth_MBps());
  }
  return 0;
}
