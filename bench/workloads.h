// Shared workload builders for the figure-reproduction harnesses.
//
// Each harness builds the paper's workload with the *real* DPFS planner
// (layout::PlanCollectiveAccess et al.) and replays the resulting request
// stream on simnet's storage-class models (see DESIGN.md for why this
// substitution preserves the figures' shape).
#pragma once

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "layout/hpf.h"
#include "layout/plan.h"
#include "layout/replication.h"
#include "simnet/replay.h"

namespace dpfs::bench {

/// The six bars of Fig 11/12.
enum class Variant {
  kLinear,
  kCombinedLinear,
  kMultidim,
  kCombinedMultidim,
  kArray,
  kCombinedArray,
};

inline const char* VariantName(Variant variant) {
  switch (variant) {
    case Variant::kLinear: return "Linear";
    case Variant::kCombinedLinear: return "Combined Linear";
    case Variant::kMultidim: return "Multi-dim";
    case Variant::kCombinedMultidim: return "Combined Multi-dim";
    case Variant::kArray: return "Array";
    case Variant::kCombinedArray: return "Combined Array";
  }
  return "?";
}

inline bool VariantCombined(Variant variant) {
  return variant == Variant::kCombinedLinear ||
         variant == Variant::kCombinedMultidim ||
         variant == Variant::kCombinedArray;
}

/// The Fig 11/12 workload: a square byte array accessed (*,BLOCK) by
/// `compute_nodes` clients over `io_nodes` servers.
struct FileLevelConfig {
  std::uint32_t compute_nodes = 8;
  std::uint32_t io_nodes = 4;
  std::uint64_t array_dim = 32 * 1024;   // 32K x 32K bytes, as in §8.1
  std::uint64_t brick_bytes = 64 * 1024; // linear striping unit
  std::uint64_t md_tile = 256;           // multidim striping unit edge
};

/// Builds the collective (*,BLOCK) access plan for one variant.
inline Result<layout::IoPlan> BuildFileLevelPlan(const FileLevelConfig& config,
                                                 Variant variant,
                                                 layout::IoDirection direction) {
  using namespace dpfs::layout;
  const Shape array = {config.array_dim, config.array_dim};
  const HpfPattern star_block = HpfPattern::Parse("(*,BLOCK)").value();
  ProcessGrid grid;
  grid.grid = {config.compute_nodes};

  BrickMap map;
  switch (variant) {
    case Variant::kLinear:
    case Variant::kCombinedLinear: {
      DPFS_ASSIGN_OR_RETURN(
          map, BrickMap::LinearArray(array, 1, config.brick_bytes));
      break;
    }
    case Variant::kMultidim:
    case Variant::kCombinedMultidim: {
      DPFS_ASSIGN_OR_RETURN(
          map,
          BrickMap::Multidim(array, {config.md_tile, config.md_tile}, 1));
      break;
    }
    case Variant::kArray:
    case Variant::kCombinedArray: {
      DPFS_ASSIGN_OR_RETURN(map,
                            BrickMap::Array(array, star_block, grid, 1));
      break;
    }
  }
  DPFS_ASSIGN_OR_RETURN(
      BrickDistribution dist,
      BrickDistribution::RoundRobin(map.num_bricks(), config.io_nodes));

  DPFS_ASSIGN_OR_RETURN(
      const std::vector<Region> chunks,
      AllChunks(array, star_block, grid));

  PlanOptions options;
  options.direction = direction;
  options.combine = VariantCombined(variant);
  return PlanCollectiveAccess(map, dist, chunks, options);
}

/// The Fig 13/14 workload: a linear file where client c reads/writes its own
/// contiguous block, striped over heterogeneous servers by `policy`.
struct StripingAlgConfig {
  std::uint32_t compute_nodes = 8;
  std::uint32_t io_nodes = 8;
  std::uint64_t bytes_per_client = 32ull << 20;  // 32 MB each
  std::uint64_t brick_bytes = 64 * 1024;
  std::vector<std::uint32_t> performance;  // per server (§4.1 numbers)
};

inline Result<layout::IoPlan> BuildStripingAlgPlan(
    const StripingAlgConfig& config, layout::PlacementPolicy policy,
    bool combine, layout::IoDirection direction) {
  using namespace dpfs::layout;
  const std::uint64_t total =
      config.bytes_per_client * config.compute_nodes;
  DPFS_ASSIGN_OR_RETURN(const BrickMap map,
                        BrickMap::Linear(total, config.brick_bytes));
  DPFS_ASSIGN_OR_RETURN(
      const BrickDistribution dist,
      BrickDistribution::Create(policy, map.num_bricks(),
                                config.performance));
  PlanOptions options;
  options.direction = direction;
  options.combine = combine;
  IoPlan plan;
  for (std::uint32_t c = 0; c < config.compute_nodes; ++c) {
    DPFS_ASSIGN_OR_RETURN(
        ClientPlan client,
        PlanByteAccess(map, dist, c, c * config.bytes_per_client,
                       config.bytes_per_client, options));
    plan.clients.push_back(std::move(client));
  }
  return plan;
}

// --- noncontiguous access (docs/NONCONTIGUOUS_IO.md) -----------------------

/// How a noncontiguous (vector/subarray) access is served on the wire.
enum class NoncontigStrategy {
  kWholeBrick,  // fetch every touched brick whole, discard the holes
  kSieve,       // one contiguous read of the bounding span, extract client-side
  kListIo,      // kListRead/kListWrite: only the listed extents cross the wire
};

inline const char* NoncontigStrategyName(NoncontigStrategy strategy) {
  switch (strategy) {
    case NoncontigStrategy::kWholeBrick: return "whole-brick";
    case NoncontigStrategy::kSieve: return "sieve";
    case NoncontigStrategy::kListIo: return "list I/O";
  }
  return "?";
}

/// An MPI vector access per client: `count` blocks of `block` bytes, one
/// every `stride` bytes, clients tiled back to back through a shared linear
/// file. block == stride degenerates to a contiguous access; a 2-D subarray
/// of an N-wide row-major array is the special case block = cols, stride = N.
struct NoncontigConfig {
  std::uint32_t clients = 8;
  std::uint32_t io_nodes = 4;
  std::uint64_t brick_bytes = 64 * 1024;
  std::uint64_t count = 1024;
  std::uint64_t block = 512;
  std::uint64_t stride = 8 * 1024;
};

/// Builds the plan all `clients` run concurrently under one strategy.
inline Result<layout::IoPlan> BuildNoncontigPlan(const NoncontigConfig& config,
                                                 NoncontigStrategy strategy,
                                                 layout::IoDirection direction =
                                                     layout::IoDirection::kRead) {
  using namespace layout;
  const std::uint64_t span = config.count * config.stride;
  DPFS_ASSIGN_OR_RETURN(
      const BrickMap map,
      BrickMap::Linear(span * config.clients, config.brick_bytes));
  DPFS_ASSIGN_OR_RETURN(
      const BrickDistribution dist,
      BrickDistribution::RoundRobin(map.num_bricks(), config.io_nodes));
  PlanOptions options;
  options.direction = direction;
  options.combine = true;
  IoPlan plan;
  for (std::uint32_t c = 0; c < config.clients; ++c) {
    const std::uint64_t base = static_cast<std::uint64_t>(c) * span;
    ClientPlan client;
    switch (strategy) {
      case NoncontigStrategy::kListIo: {
        std::vector<FileExtent> extents;
        extents.reserve(config.count);
        for (std::uint64_t i = 0; i < config.count; ++i) {
          extents.push_back({base + i * config.stride, config.block});
        }
        DPFS_ASSIGN_OR_RETURN(client,
                              PlanListAccess(map, dist, c, extents, options));
        break;
      }
      case NoncontigStrategy::kSieve: {
        // Data sieving: the whole bounding span, holes included, as one
        // contiguous transfer (the hole tail after the last block is not
        // fetched).
        const std::uint64_t bound =
            (config.count - 1) * config.stride + config.block;
        DPFS_ASSIGN_OR_RETURN(
            client, PlanByteAccess(map, dist, c, base, bound, options));
        break;
      }
      case NoncontigStrategy::kWholeBrick: {
        // One plan per block, merged by server: every touched brick crosses
        // whole, once. (For writes this models read-modify-write of each
        // brick, the no-list fallback.)
        PlanOptions whole = options;
        whole.whole_brick_reads = true;
        std::map<ServerId, ServerRequest> grouped;
        for (std::uint64_t i = 0; i < config.count; ++i) {
          DPFS_ASSIGN_OR_RETURN(
              const ClientPlan piece,
              PlanByteAccess(map, dist, c, base + i * config.stride,
                             config.block, whole));
          for (const ServerRequest& request : piece.requests) {
            ServerRequest& bucket = grouped[request.server];
            bucket.server = request.server;
            for (const BrickRequest& brick : request.bricks) {
              if (!bucket.bricks.empty() &&
                  bucket.bricks.back().brick == brick.brick) {
                bucket.bricks.back().useful_bytes += brick.useful_bytes;
                bucket.bricks.back().num_runs += brick.num_runs;
              } else {
                BrickRequest whole_brick = brick;
                whole_brick.transfer_bytes = map.brick_fetch_bytes(brick.brick);
                whole_brick.fragments = 1;
                bucket.bricks.push_back(whole_brick);
              }
            }
          }
        }
        client.client = c;
        client.direction = direction;
        client.whole_brick_reads = true;
        for (auto& [server, request] : grouped) {
          client.requests.push_back(std::move(request));
        }
        break;
      }
    }
    plan.clients.push_back(std::move(client));
  }
  return plan;
}

// --- replication (docs/REPLICATION.md) -------------------------------------

/// The degraded-throughput workload (bench/micro_degraded): Fig-13-style
/// per-client contiguous blocks over uniform servers, replicated at
/// `spec.factor` with the shared-accumulator greedy rule.
struct ReplicationBenchConfig {
  std::uint32_t compute_nodes = 8;
  std::uint32_t io_nodes = 8;
  std::uint64_t bytes_per_client = 8ull << 20;
  std::uint64_t brick_bytes = 64 * 1024;
  std::vector<std::uint32_t> performance;  // per server (§4.1 numbers)
  layout::ReplicationSpec spec;            // factor + failure domains
  /// §4.2 request combination. Off = one request per brick, the
  /// latency-sensitive regime (bench/micro_degraded's WAN sweep).
  bool combine = true;
};

/// A replicated file's layout: the brick map plus all R placement ranks.
struct ReplicatedWorkload {
  layout::BrickMap map;
  layout::ReplicatedDistribution dist;
};

inline Result<ReplicatedWorkload> BuildReplicatedWorkload(
    const ReplicationBenchConfig& config) {
  using namespace layout;
  const std::uint64_t total =
      config.bytes_per_client * config.compute_nodes;
  DPFS_ASSIGN_OR_RETURN(BrickMap map,
                        BrickMap::Linear(total, config.brick_bytes));
  DPFS_ASSIGN_OR_RETURN(
      ReplicatedDistribution dist,
      ReplicatedDistribution::Create(PlacementPolicy::kGreedy,
                                     map.num_bricks(), config.performance,
                                     config.spec));
  return ReplicatedWorkload{std::move(map), std::move(dist)};
}

/// The collective plan all clients run: each accesses its own contiguous
/// block (combined requests). Writes against a replicated layout are
/// expanded to all ranks — exactly what the executor ships.
inline Result<layout::IoPlan> BuildReplicatedPlan(
    const ReplicationBenchConfig& config, const ReplicatedWorkload& workload,
    layout::IoDirection direction) {
  using namespace layout;
  PlanOptions options;
  options.direction = direction;
  options.combine = config.combine;
  IoPlan plan;
  for (std::uint32_t c = 0; c < config.compute_nodes; ++c) {
    DPFS_ASSIGN_OR_RETURN(
        ClientPlan client,
        PlanByteAccess(workload.map, workload.dist.primary(), c,
                       c * config.bytes_per_client, config.bytes_per_client,
                       options));
    if (direction == IoDirection::kWrite &&
        workload.dist.factor() > 1) {
      DPFS_ASSIGN_OR_RETURN(client,
                            ExpandWritePlan(client, workload.dist));
    }
    plan.clients.push_back(std::move(client));
  }
  return plan;
}

/// The failover path's plan shape: every (rank 0) read request that named
/// `dead` is regrouped onto the rank-1 replicas, the rest stay primary —
/// same bytes, surviving servers only.
inline Result<layout::IoPlan> DegradeReadPlan(
    const layout::IoPlan& plan, const ReplicatedWorkload& workload,
    layout::ServerId dead) {
  using namespace layout;
  IoPlan out;
  for (const ClientPlan& client : plan.clients) {
    ClientPlan degraded = client;
    degraded.requests.clear();
    for (const ServerRequest& request : client.requests) {
      if (request.server != dead) {
        degraded.requests.push_back(request);
        continue;
      }
      DPFS_ASSIGN_OR_RETURN(
          std::vector<ServerRequest> remapped,
          RemapRequestToRank(request, workload.dist.rank(1), 1));
      for (ServerRequest& r : remapped) {
        degraded.requests.push_back(std::move(r));
      }
    }
    out.clients.push_back(std::move(degraded));
  }
  return out;
}

inline std::vector<simnet::StorageClassModel> UniformServers(
    const simnet::StorageClassModel& model, std::uint32_t count) {
  return std::vector<simnet::StorageClassModel>(count, model);
}

/// Half class-1, half class-3, as in Fig 13/14.
inline std::vector<simnet::StorageClassModel> HalfClass1HalfClass3(
    std::uint32_t count) {
  std::vector<simnet::StorageClassModel> servers;
  servers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    servers.push_back(i < count / 2 ? simnet::Class1() : simnet::Class3());
  }
  return servers;
}

/// Replays and returns bandwidth in MB/s, aborting the harness on error
/// (benchmarks have no meaningful recovery path).
inline simnet::ReplayResult MustReplay(
    const layout::IoPlan& plan,
    const std::vector<simnet::StorageClassModel>& servers) {
  Result<simnet::ReplayResult> result = simnet::Replay(plan, servers);
  if (!result.ok()) {
    std::fprintf(stderr, "replay failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace dpfs::bench
