// Figure 13: round-robin vs greedy striping, 8 compute nodes, 8 I/O nodes,
// half class-1 / half class-3 storage.
#include "bench/striping_alg_figure.h"

int main() {
  dpfs::bench::RunStripingAlgFigure(8, 8, "Figure 13");
  return 0;
}
