// Shared driver for the Fig 11 / Fig 12 file-level comparison harnesses.
#pragma once

#include <cstdio>

#include "bench/metrics_epilogue.h"
#include "bench/workloads.h"

namespace dpfs::bench {

/// Prints the figure's table: one row per variant, one bandwidth column per
/// storage class, plus request-count and wire-efficiency diagnostics.
inline void RunFileLevelFigure(const FileLevelConfig& config,
                               const char* figure) {
  std::printf("=== %s: File Level Comparisons ===\n", figure);
  std::printf("%u compute nodes, %u I/O nodes, %lluK x %lluK array, "
              "(*,BLOCK) access\n",
              config.compute_nodes, config.io_nodes,
              static_cast<unsigned long long>(config.array_dim / 1024),
              static_cast<unsigned long long>(config.array_dim / 1024));

  const simnet::StorageClassModel models[3] = {
      simnet::Class1(), simnet::Class2(), simnet::Class3()};

  const struct {
    const char* title;
    layout::IoDirection direction;
  } phases[] = {
      // The paper's workload writes the array and reads it back (§3.3); the
      // read phase is the one whose pathologies the figure discusses.
      {"READ phase", layout::IoDirection::kRead},
      {"WRITE phase", layout::IoDirection::kWrite},
  };
  for (const auto& phase : phases) {
    std::printf("\n[%s]\n", phase.title);
    std::printf("%-20s %10s %10s %10s   %10s %12s\n", "variant", "class1",
                "class2", "class3", "requests", "wire-eff");
    for (const Variant variant :
         {Variant::kLinear, Variant::kCombinedLinear, Variant::kMultidim,
          Variant::kCombinedMultidim, Variant::kArray,
          Variant::kCombinedArray}) {
      const Result<layout::IoPlan> plan =
          BuildFileLevelPlan(config, variant, phase.direction);
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return;
      }
      double bandwidth[3] = {0, 0, 0};
      simnet::ReplayResult last;
      for (int i = 0; i < 3; ++i) {
        last = MustReplay(plan.value(),
                          UniformServers(models[i], config.io_nodes));
        bandwidth[i] = last.aggregate_bandwidth_MBps();
      }
      std::printf("%-20s %10.2f %10.2f %10.2f   %10zu %11.4f%%\n",
                  VariantName(variant), bandwidth[0], bandwidth[1],
                  bandwidth[2], last.total_requests,
                  last.efficiency() * 100.0);
    }
  }
  std::printf("\n");
  PrintMetricsEpilogue();
}

}  // namespace dpfs::bench
