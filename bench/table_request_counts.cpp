// The §4.2 worked example, printed as a table: per-processor request counts
// and first-request targets with and without request combination, for the
// 32-brick file of Fig 3.
#include <cstdio>

#include "layout/plan.h"

namespace {

using namespace dpfs::layout;

void Run(bool combine, bool rotate) {
  const BrickMap map = BrickMap::Linear(32 * 1024, 1024).value();
  const BrickDistribution dist = BrickDistribution::RoundRobin(32, 4).value();
  PlanOptions options;
  options.combine = combine;
  options.rotate_start = rotate;

  std::printf("%s%s:\n", combine ? "combined" : "general",
              combine && rotate ? " + rotated schedule" : "");
  for (std::uint32_t p = 0; p < 4; ++p) {
    const ClientPlan plan =
        PlanByteAccess(map, dist, p, p * 8 * 1024, 8 * 1024, options).value();
    std::printf("  processor %u: %zu requests, first -> server %u (bricks",
                p, plan.num_requests(), plan.requests.front().server);
    for (const BrickRequest& brick : plan.requests.front().bricks) {
      std::printf(" %llu", static_cast<unsigned long long>(brick.brick));
    }
    std::printf(")\n");
  }
}

}  // namespace

int main() {
  std::printf("=== Section 4.2 worked example: request combination on the "
              "Fig 3 file ===\n");
  std::printf("32 bricks, 4 servers round-robin; processor p accesses "
              "bricks 8p..8p+7\n\n");
  Run(/*combine=*/false, /*rotate=*/false);
  std::printf("\n");
  Run(/*combine=*/true, /*rotate=*/false);
  std::printf("\n");
  Run(/*combine=*/true, /*rotate=*/true);
  std::printf("\nPaper: general = 8 requests each, all starting at server 0; "
              "combined = 4 requests each;\nrotated schedule starts "
              "processors 0..3 at subfiles 0..3 (bricks {0,4} {9,13} "
              "{18,22} {27,31}).\n");
  return 0;
}
