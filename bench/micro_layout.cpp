// Micro-benchmarks of the client-side striping math — the work DPFS-API
// does before any byte moves ("DPFS API then calculates the brick
// numbers...", §2). These costs bound metadata-path scalability.
#include <benchmark/benchmark.h>

#include "layout/plan.h"

namespace {

using namespace dpfs::layout;

void BM_SummarizeMultidimChunk(benchmark::State& state) {
  // A (*,BLOCK) chunk over a paper-scale multidim file; cost scales with
  // bricks touched (state.range = clients, so chunk width shrinks).
  const std::uint64_t dim = 32 * 1024;
  const BrickMap map = BrickMap::Multidim({dim, dim}, {256, 256}, 1).value();
  const std::uint64_t clients = static_cast<std::uint64_t>(state.range(0));
  const Region chunk{{0, 0}, {dim, dim / clients}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.SummarizeRegion(chunk));
  }
  state.SetLabel(std::to_string(map.SummarizeRegion(chunk).value().size()) +
                 " bricks");
}
BENCHMARK(BM_SummarizeMultidimChunk)->Arg(8)->Arg(16)->Arg(64);

void BM_SummarizeLinearColumnAccess(benchmark::State& state) {
  // The §3.2 pathological case: the summary itself walks every row run.
  const std::uint64_t dim = static_cast<std::uint64_t>(state.range(0));
  const BrickMap map = BrickMap::LinearArray({dim, dim}, 1, 64 * 1024).value();
  const Region column{{0, 0}, {dim, 1}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.SummarizeRegion(column));
  }
}
BENCHMARK(BM_SummarizeLinearColumnAccess)->Arg(4096)->Arg(16384)->Arg(65536);

void BM_RunEnumerationMultidim(benchmark::State& state) {
  const BrickMap map = BrickMap::Multidim({4096, 4096}, {256, 256}, 1).value();
  const Region region{{17, 33}, {2048, 1024}};
  for (auto _ : state) {
    std::uint64_t checksum = 0;
    (void)map.ForEachRun(region, [&](const BrickRun& run) {
      checksum += run.offset_in_brick + run.length;
    });
    benchmark::DoNotOptimize(checksum);
  }
}
BENCHMARK(BM_RunEnumerationMultidim);

void BM_GreedyPlacement(benchmark::State& state) {
  const std::uint64_t bricks = static_cast<std::uint64_t>(state.range(0));
  const std::vector<std::uint32_t> perf = {1, 1, 3, 3, 5, 2, 1, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BrickDistribution::Greedy(bricks, perf));
  }
}
BENCHMARK(BM_GreedyPlacement)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_PlanCombinedAccess(benchmark::State& state) {
  const std::uint64_t dim = 16 * 1024;
  const BrickMap map = BrickMap::Multidim({dim, dim}, {256, 256}, 1).value();
  const BrickDistribution dist =
      BrickDistribution::RoundRobin(map.num_bricks(), 8).value();
  const Region chunk{{0, 0}, {dim, dim / 8}};
  PlanOptions options;
  options.combine = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(PlanRegionAccess(map, dist, 0, chunk, options));
  }
}
BENCHMARK(BM_PlanCombinedAccess);

void BM_BrickListCodec(benchmark::State& state) {
  const BrickDistribution dist =
      BrickDistribution::Greedy(16384, {1, 3, 1, 3}).value();
  const std::string encoded =
      BrickDistribution::EncodeBrickList(dist.bricks_on(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(BrickDistribution::DecodeBrickList(encoded));
  }
  state.SetLabel(std::to_string(dist.bricks_on(0).size()) + " bricks");
}
BENCHMARK(BM_BrickListCodec);

}  // namespace

BENCHMARK_MAIN();
