// A/B harness for the two I/O server engines (docs/ASYNC_SERVER.md):
// thread-per-connection vs the epoll event loop, swept over concurrent
// sessions × request size. Each client thread drives write+read pairs on its
// own subfile over real loopback TCP and records per-op latency locally, so
// the table reports client-observed throughput and p95 per cell. Ends with
// the live metrics snapshot (io_server.batch_size / epoll_wake only move in
// the event rows; docs/OBSERVABILITY.md).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/temp_dir.h"
#include "net/connection.h"
#include "server/io_server.h"

namespace {

using dpfs::Bytes;
using dpfs::net::ReadFragment;
using dpfs::net::ServerConnection;
using dpfs::net::WriteFragment;
using dpfs::server::IoServer;
using dpfs::server::ServerEngine;
using dpfs::server::ServerOptions;
using Clock = std::chrono::steady_clock;

struct Cell {
  double ops_per_sec = 0;
  double mib_per_sec = 0;
  double p95_us = 0;
};

constexpr int kOpsPerSession = 200;

Cell RunCell(ServerEngine engine, int sessions, std::size_t request_bytes) {
  dpfs::TempDir root = dpfs::TempDir::Create("bench_engine").value();
  ServerOptions options;
  options.root_dir = root.path();
  options.engine = engine;
  std::unique_ptr<IoServer> server =
      IoServer::Start(std::move(options)).value();

  std::vector<std::vector<double>> latencies(sessions);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(sessions));
  const auto wall_start = Clock::now();
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      ServerConnection conn =
          ServerConnection::Connect(server->endpoint()).value();
      const std::string subfile = "bench/s" + std::to_string(s) + ".sub";
      const Bytes payload(request_bytes, static_cast<std::uint8_t>(s));
      std::vector<double>& lat = latencies[static_cast<std::size_t>(s)];
      lat.reserve(kOpsPerSession);
      for (int op = 0; op < kOpsPerSession; ++op) {
        const auto start = Clock::now();
        const dpfs::Status wrote =
            conn.Write(subfile, {WriteFragment{0, payload}});
        const dpfs::Result<Bytes> read =
            conn.Read(subfile, {ReadFragment{0, request_bytes}});
        const auto stop = Clock::now();
        if (!wrote.ok() || !read.ok() ||
            read.value().size() != request_bytes) {
          failures.fetch_add(1);
          return;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(stop - start).count());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double wall_sec =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  server->Stop();
  if (failures.load() > 0) {
    std::fprintf(stderr, "engine bench cell failed (%d sessions)\n", sessions);
    return {};
  }

  std::vector<double> all;
  for (const std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  std::sort(all.begin(), all.end());
  const double total_ops = static_cast<double>(all.size());
  Cell cell;
  cell.ops_per_sec = total_ops / wall_sec;
  // Each op moves the payload twice (write out + read back).
  cell.mib_per_sec = total_ops * 2.0 * static_cast<double>(request_bytes) /
                     (1024.0 * 1024.0) / wall_sec;
  cell.p95_us = all.empty() ? 0.0
                            : all[static_cast<std::size_t>(
                                  0.95 * (total_ops - 1.0))];
  return cell;
}

const char* EngineName(ServerEngine engine) {
  return engine == ServerEngine::kEventLoop ? "event " : "thread";
}

}  // namespace

int main() {
  std::printf("Server engine A/B: write+read pairs per session, %d ops each "
              "(real loopback TCP)\n\n", kOpsPerSession);
  std::printf("%-8s %9s %10s %12s %12s %10s\n", "engine", "sessions",
              "req_bytes", "ops/s", "MiB/s", "p95_us");
  for (const std::size_t request_bytes : {4096u, 65536u}) {
    for (const int sessions : {1, 8, 32}) {
      for (const ServerEngine engine :
           {ServerEngine::kThreadPerConnection, ServerEngine::kEventLoop}) {
        const Cell cell = RunCell(engine, sessions, request_bytes);
        std::printf("%-8s %9d %10zu %12.0f %12.1f %10.1f\n",
                    EngineName(engine), sessions, request_bytes,
                    cell.ops_per_sec, cell.mib_per_sec, cell.p95_us);
      }
    }
  }

  std::printf("\n--- metrics snapshot (live engine A/B traffic; "
              "docs/OBSERVABILITY.md) ---\n%s"
              "--- end metrics snapshot ---\n",
              dpfs::metrics::Registry::Global().TextSnapshot().c_str());
  return 0;
}
