// Micro-benchmarks for the embedded metadata database: the operations the
// DPFS client issues on every open/create (point SELECTs, INSERTs,
// transactions), plus WAL-durable variants, plus the `metadb_shards` sweep
// (shards x client threads) that justifies the sharded engine — numbers are
// recorded in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <optional>
#include <thread>
#include <vector>

#include "client/metadata.h"
#include "common/temp_dir.h"
#include "metadb/database.h"
#include "metadb/sharded_database.h"
#include "metadb/sql_parser.h"

namespace {

using dpfs::TempDir;
using dpfs::metadb::Database;
using dpfs::metadb::ShardedDatabase;

void SeedServers(Database& db, int count) {
  (void)db.Execute(
      "CREATE TABLE DPFS_SERVER (server_name TEXT PRIMARY KEY, "
      "capacity INT, performance INT)");
  for (int i = 0; i < count; ++i) {
    (void)db.Execute("INSERT INTO DPFS_SERVER VALUES ('node" +
                     std::to_string(i) + ".dpfs', 500000000, " +
                     std::to_string(1 + i % 3) + ")");
  }
}

void BM_PointSelectByPrimaryKey(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, static_cast<int>(state.range(0)));
  const std::string sql =
      "SELECT * FROM DPFS_SERVER WHERE server_name = 'node" +
      std::to_string(state.range(0) / 2) + ".dpfs'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(sql));
  }
}
BENCHMARK(BM_PointSelectByPrimaryKey)->Arg(8)->Arg(64)->Arg(512);

void BM_FullScanWithPredicate(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Execute("SELECT server_name FROM DPFS_SERVER WHERE "
                    "performance >= 2 AND capacity > 1000"));
  }
}
BENCHMARK(BM_FullScanWithPredicate)->Arg(8)->Arg(64)->Arg(512);

void BM_InsertAutoCommitInMemory(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)");
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "INSERT INTO t VALUES (" + std::to_string(next++) + ", 'bricklist')"));
  }
}
BENCHMARK(BM_InsertAutoCommitInMemory);

void BM_InsertAutoCommitDurable(benchmark::State& state) {
  const TempDir dir = TempDir::Create("dpfs-bench-db").value();
  auto db = Database::Open(dir.path()).value();
  (void)db->Execute("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)");
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "INSERT INTO t VALUES (" + std::to_string(next++) + ", 'bricklist')"));
  }
}
BENCHMARK(BM_InsertAutoCommitDurable);

void BM_FileCreateTransaction(benchmark::State& state) {
  // The 3-table transaction a DPFS file creation issues.
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE attr (filename TEXT PRIMARY KEY, size INT)");
  (void)db->Execute("CREATE TABLE dist (filename TEXT, server TEXT, "
                    "bricklist TEXT)");
  (void)db->Execute("CREATE TABLE dir (main_dir TEXT PRIMARY KEY, files TEXT)");
  (void)db->Execute("INSERT INTO dir VALUES ('/', '')");
  std::int64_t next = 0;
  for (auto _ : state) {
    const std::string name = "'/f" + std::to_string(next++) + "'";
    (void)db->Execute("BEGIN");
    (void)db->Execute("INSERT INTO attr VALUES (" + name + ", 1048576)");
    (void)db->Execute("INSERT INTO dist VALUES (" + name +
                      ", 'node0', '0,4,8,12')");
    (void)db->Execute("INSERT INTO dist VALUES (" + name +
                      ", 'node1', '1,5,9,13')");
    (void)db->Execute("UPDATE dir SET files = 'f' WHERE main_dir = '/'");
    (void)db->Execute("COMMIT");
  }
}
BENCHMARK(BM_FileCreateTransaction);

void BM_UpdateByPredicate(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "UPDATE DPFS_SERVER SET capacity = 400000000 WHERE performance = 2"));
  }
}
BENCHMARK(BM_UpdateByPredicate);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpfs::metadb::ParseStatement(
        "SELECT server, bricklist FROM DPFS_FILE_DISTRIBUTION WHERE "
        "filename = '/home/xhshen/dpfs.test' AND server_index >= 0 "
        "ORDER BY server_index LIMIT 16"));
  }
}
BENCHMARK(BM_SqlParseOnly);

// --- metadb_shards sweep ---------------------------------------------------
// Full-stack MetadataManager ops against an in-memory ShardedDatabase. Each
// client thread owns its files under its own directory, so mutations spread
// across home shards by path hash; with one shard every writer serializes on
// the single transaction mutex, which is exactly the contention sharding
// removes.

struct ShardedBenchState {
  std::optional<TempDir> dir;  // durable benches only
  std::shared_ptr<ShardedDatabase> db;
  std::unique_ptr<dpfs::client::MetadataManager> meta;
  std::vector<std::vector<std::string>> files;  // [thread][i]
};

ShardedBenchState MakeShardedBench(std::size_t shards, int threads,
                                   int files_per_thread,
                                   bool durable_sync = false) {
  using namespace dpfs;
  ShardedBenchState bench;
  if (durable_sync) {
    bench.dir = TempDir::Create("dpfs-bench-sharded").value();
    bench.db = ShardedDatabase::Open(bench.dir->path(), shards).value();
  } else {
    bench.db = ShardedDatabase::OpenInMemory(shards).value();
  }
  bench.meta = client::MetadataManager::Attach(bench.db).value();

  client::ServerInfo server;
  server.name = "s0";
  server.endpoint = {"127.0.0.1", 9000};
  server.capacity_bytes = 500'000'000;
  server.performance = 1;
  (void)bench.meta->RegisterServer(server);
  server.name = "s1";
  (void)bench.meta->RegisterServer(server);

  const auto dist = layout::BrickDistribution::RoundRobin(2, 2).value();
  bench.files.resize(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    const std::string dir = "/t" + std::to_string(t);
    (void)bench.meta->MakeDirectory(dir);
    // Thread t's working set co-locates on shard t mod N — the steady state
    // for a client working inside its own directory subtree, and the
    // deterministic layout that makes the shard sweep reproducible (with
    // one shard every name qualifies, so the workload is unchanged).
    const std::size_t want = static_cast<std::size_t>(t) % shards;
    for (int i = 0, j = 0; i < files_per_thread; ++j) {
      client::FileMeta meta;
      meta.path = dir + "/f" + std::to_string(j);
      if (bench.db->ShardForPath(meta.path) != want) continue;
      ++i;
      meta.owner = "bench";
      meta.permission = 0644;
      meta.level = layout::FileLevel::kLinear;
      meta.size_bytes = 128;
      meta.brick_bytes = 64;
      (void)bench.meta->CreateFile(meta, {"s0", "s1"}, dist);
      bench.files[static_cast<std::size_t>(t)].push_back(meta.path);
    }
  }
  return bench;
}

// Mixed read/write metadata ops (one permission update + one full lookup per
// unit) from N client threads. items_per_second counts individual ops.
void BM_ShardedMetadataOps(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kFilesPerThread = 64;
  constexpr int kOpsPerThread = 256;
  ShardedBenchState bench = MakeShardedBench(shards, threads, kFilesPerThread);

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&bench, t] {
        const std::vector<std::string>& mine =
            bench.files[static_cast<std::size_t>(t)];
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string& path = mine[static_cast<std::size_t>(i) %
                                         mine.size()];
          (void)bench.meta->SetPermission(path, 0600 + (i & 7));
          benchmark::DoNotOptimize(bench.meta->LookupFile(path));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kOpsPerThread * 2);
}
BENCHMARK(BM_ShardedMetadataOps)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({4, 4})
    ->Args({4, 8})
    ->UseRealTime();

// Mutation throughput against a durable database with synced commits — the
// metadata-server configuration. Every mutation blocks on an fdatasync;
// with one shard those waits serialize behind the single transaction mutex,
// with N shards up to N of them overlap. This is where sharding pays even
// on a single-core metadata node.
void BM_ShardedMetadataOpsDurableSync(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  constexpr int kFilesPerThread = 16;
  constexpr int kOpsPerThread = 32;
  ShardedBenchState bench = MakeShardedBench(shards, threads, kFilesPerThread,
                                             /*durable_sync=*/true);
  // Seeding above ran unsynced; only the measured mutations pay the fsync.
  bench.db->SetSyncCommits(true);

  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&bench, t] {
        const std::vector<std::string>& mine =
            bench.files[static_cast<std::size_t>(t)];
        for (int i = 0; i < kOpsPerThread; ++i) {
          const std::string& path = mine[static_cast<std::size_t>(i) %
                                         mine.size()];
          (void)bench.meta->SetPermission(path, 0600 + (i & 7));
        }
      });
    }
    for (std::thread& worker : workers) worker.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kOpsPerThread);
}
BENCHMARK(BM_ShardedMetadataOpsDurableSync)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({4, 8})
    ->Args({8, 8})
    ->UseRealTime();

// Single-thread LookupFile latency — the regression guard: shards=1 must
// stay within the noise of the unsharded engine (it IS the unsharded engine
// plus one facade indirection).
void BM_ShardedLookupSingleThread(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  constexpr int kFiles = 64;
  ShardedBenchState bench = MakeShardedBench(shards, /*threads=*/1, kFiles);
  const std::vector<std::string>& files = bench.files[0];
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench.meta->LookupFile(files[next]));
    next = (next + 1) % files.size();
  }
}
BENCHMARK(BM_ShardedLookupSingleThread)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(4);

}  // namespace

BENCHMARK_MAIN();
