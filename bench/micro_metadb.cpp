// Micro-benchmarks for the embedded metadata database: the operations the
// DPFS client issues on every open/create (point SELECTs, INSERTs,
// transactions), plus WAL-durable variants.
#include <benchmark/benchmark.h>

#include "common/temp_dir.h"
#include "metadb/database.h"
#include "metadb/sql_parser.h"

namespace {

using dpfs::TempDir;
using dpfs::metadb::Database;

void SeedServers(Database& db, int count) {
  (void)db.Execute(
      "CREATE TABLE DPFS_SERVER (server_name TEXT PRIMARY KEY, "
      "capacity INT, performance INT)");
  for (int i = 0; i < count; ++i) {
    (void)db.Execute("INSERT INTO DPFS_SERVER VALUES ('node" +
                     std::to_string(i) + ".dpfs', 500000000, " +
                     std::to_string(1 + i % 3) + ")");
  }
}

void BM_PointSelectByPrimaryKey(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, static_cast<int>(state.range(0)));
  const std::string sql =
      "SELECT * FROM DPFS_SERVER WHERE server_name = 'node" +
      std::to_string(state.range(0) / 2) + ".dpfs'";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(sql));
  }
}
BENCHMARK(BM_PointSelectByPrimaryKey)->Arg(8)->Arg(64)->Arg(512);

void BM_FullScanWithPredicate(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db->Execute("SELECT server_name FROM DPFS_SERVER WHERE "
                    "performance >= 2 AND capacity > 1000"));
  }
}
BENCHMARK(BM_FullScanWithPredicate)->Arg(8)->Arg(64)->Arg(512);

void BM_InsertAutoCommitInMemory(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)");
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "INSERT INTO t VALUES (" + std::to_string(next++) + ", 'bricklist')"));
  }
}
BENCHMARK(BM_InsertAutoCommitInMemory);

void BM_InsertAutoCommitDurable(benchmark::State& state) {
  const TempDir dir = TempDir::Create("dpfs-bench-db").value();
  auto db = Database::Open(dir.path()).value();
  (void)db->Execute("CREATE TABLE t (id INT PRIMARY KEY, payload TEXT)");
  std::int64_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "INSERT INTO t VALUES (" + std::to_string(next++) + ", 'bricklist')"));
  }
}
BENCHMARK(BM_InsertAutoCommitDurable);

void BM_FileCreateTransaction(benchmark::State& state) {
  // The 3-table transaction a DPFS file creation issues.
  auto db = Database::OpenInMemory();
  (void)db->Execute("CREATE TABLE attr (filename TEXT PRIMARY KEY, size INT)");
  (void)db->Execute("CREATE TABLE dist (filename TEXT, server TEXT, "
                    "bricklist TEXT)");
  (void)db->Execute("CREATE TABLE dir (main_dir TEXT PRIMARY KEY, files TEXT)");
  (void)db->Execute("INSERT INTO dir VALUES ('/', '')");
  std::int64_t next = 0;
  for (auto _ : state) {
    const std::string name = "'/f" + std::to_string(next++) + "'";
    (void)db->Execute("BEGIN");
    (void)db->Execute("INSERT INTO attr VALUES (" + name + ", 1048576)");
    (void)db->Execute("INSERT INTO dist VALUES (" + name +
                      ", 'node0', '0,4,8,12')");
    (void)db->Execute("INSERT INTO dist VALUES (" + name +
                      ", 'node1', '1,5,9,13')");
    (void)db->Execute("UPDATE dir SET files = 'f' WHERE main_dir = '/'");
    (void)db->Execute("COMMIT");
  }
}
BENCHMARK(BM_FileCreateTransaction);

void BM_UpdateByPredicate(benchmark::State& state) {
  auto db = Database::OpenInMemory();
  SeedServers(*db, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db->Execute(
        "UPDATE DPFS_SERVER SET capacity = 400000000 WHERE performance = 2"));
  }
}
BENCHMARK(BM_UpdateByPredicate);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(dpfs::metadb::ParseStatement(
        "SELECT server, bricklist FROM DPFS_FILE_DISTRIBUTION WHERE "
        "filename = '/home/xhshen/dpfs.test' AND server_index >= 0 "
        "ORDER BY server_index LIMIT 16"));
  }
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace

BENCHMARK_MAIN();
