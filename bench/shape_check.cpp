// The reproduction's executable verdict: every qualitative claim from the
// paper's evaluation, checked against the model and printed as PASS/FAIL.
// Exits nonzero on any violation, and runs under ctest, so a calibration or
// planner change that breaks a figure's *shape* fails the build.
#include <cstdio>

#include "bench/workloads.h"

namespace {

int g_failures = 0;

void Check(bool ok, const char* claim, double lhs, double rhs) {
  std::printf("[%s] %-68s (%.2f vs %.2f)\n", ok ? "PASS" : "FAIL", claim,
              lhs, rhs);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  using namespace dpfs::bench;
  using dpfs::layout::IoDirection;
  using dpfs::layout::PlacementPolicy;

  std::printf("=== Shape check: the paper's claims, asserted ===\n\n");

  // ------------------------------------------------------------- Fig 11/12
  for (const auto& [clients, servers, figure] :
       {std::tuple{8u, 4u, "Fig 11"}, std::tuple{16u, 8u, "Fig 12"}}) {
    FileLevelConfig config;
    config.compute_nodes = clients;
    config.io_nodes = servers;
    const auto servers_model = UniformServers(dpfs::simnet::Class1(), servers);
    const auto bw = [&](Variant variant) {
      return MustReplay(
                 BuildFileLevelPlan(config, variant, IoDirection::kRead)
                     .value(),
                 servers_model)
          .aggregate_bandwidth_MBps();
    };
    const double linear = bw(Variant::kLinear);
    const double combined_linear = bw(Variant::kCombinedLinear);
    const double multidim = bw(Variant::kMultidim);
    const double combined_multidim = bw(Variant::kCombinedMultidim);
    const double array = bw(Variant::kArray);
    const double combined_array = bw(Variant::kCombinedArray);

    std::printf("-- %s (%u clients / %u servers, class 1) --\n", figure,
                clients, servers);
    Check(multidim > 5 * linear,
          "multidim beats linear by a large factor (paper: 10-20x)",
          multidim, linear);
    Check(combined_linear >= linear * 0.99,
          "combination does not hurt linear", combined_linear, linear);
    Check(combined_multidim > multidim,
          "combination improves multidim", combined_multidim, multidim);
    Check(array > 1.4 * multidim,
          "array level ~doubles uncombined multidim", array, multidim);
    Check(combined_array > 0.99 * array && combined_array < 1.01 * array,
          "combination cannot further improve array level", combined_array,
          array);
    Check(array >= combined_multidim * 0.95,
          "array >= combined multidim", array, combined_multidim);
  }

  // ------------------------------------------------------------- Fig 13/14
  for (const auto& [clients, servers, figure] :
       {std::tuple{8u, 8u, "Fig 13"}, std::tuple{16u, 16u, "Fig 14"}}) {
    StripingAlgConfig config;
    config.compute_nodes = clients;
    config.io_nodes = servers;
    config.performance.assign(servers, 1);
    for (std::uint32_t s = servers / 2; s < servers; ++s) {
      config.performance[s] = 3;
    }
    const auto models = HalfClass1HalfClass3(servers);
    const auto bw = [&](PlacementPolicy policy, bool combine,
                        IoDirection direction) {
      return MustReplay(
                 BuildStripingAlgPlan(config, policy, combine, direction)
                     .value(),
                 models)
          .aggregate_bandwidth_MBps();
    };
    std::printf("-- %s (%u clients / %u servers, half class1 + half class3) "
                "--\n",
                figure, clients, servers);
    for (const IoDirection direction :
         {IoDirection::kWrite, IoDirection::kRead}) {
      const char* dir_name =
          direction == IoDirection::kWrite ? "write" : "read";
      const double rr = bw(PlacementPolicy::kRoundRobin, false, direction);
      const double greedy = bw(PlacementPolicy::kGreedy, false, direction);
      const double rr_combined =
          bw(PlacementPolicy::kRoundRobin, true, direction);
      const double greedy_combined =
          bw(PlacementPolicy::kGreedy, true, direction);
      char claim[96];
      std::snprintf(claim, sizeof(claim), "greedy beats round-robin (%s)",
                    dir_name);
      Check(greedy > rr, claim, greedy, rr);
      std::snprintf(claim, sizeof(claim),
                    "combination adds further improvement (%s)", dir_name);
      Check(greedy_combined > greedy && rr_combined >= rr * 0.99, claim,
            greedy_combined, greedy);
    }
  }

  // ------------------------------------- noncontiguous access (list I/O)
  {
    // micro_noncontig's claims (docs/NONCONTIGUOUS_IO.md): on a sparse
    // vector pattern list I/O beats both whole-brick fetches and data
    // sieving, and the list-vs-sieve winner flips with access density —
    // dense patterns amortize the sieve's hole bytes better than list
    // I/O's per-extent fragment cost.
    const auto bw = [](std::uint64_t block, std::uint64_t stride,
                       NoncontigStrategy strategy) {
      NoncontigConfig config;
      config.count = 1024;
      config.block = block;
      config.stride = stride;
      const auto result =
          MustReplay(BuildNoncontigPlan(config, strategy).value(),
                     UniformServers(dpfs::simnet::Class1(), config.io_nodes));
      return static_cast<double>(config.clients * config.count * block) /
             (1024.0 * 1024.0) / result.makespan_s;
    };
    std::printf("-- Noncontiguous I/O (micro_noncontig) --\n");
    const double sparse_list = bw(512, 16 * 1024, NoncontigStrategy::kListIo);
    const double sparse_sieve = bw(512, 16 * 1024, NoncontigStrategy::kSieve);
    const double sparse_whole =
        bw(512, 16 * 1024, NoncontigStrategy::kWholeBrick);
    Check(sparse_list > 2 * sparse_sieve,
          "sparse vector: list I/O beats sieve by >2x", sparse_list,
          sparse_sieve);
    Check(sparse_list > 2 * sparse_whole,
          "sparse vector: list I/O beats whole-brick by >2x", sparse_list,
          sparse_whole);
    const double dense_list = bw(512, 1024, NoncontigStrategy::kListIo);
    const double dense_sieve = bw(512, 1024, NoncontigStrategy::kSieve);
    Check(dense_sieve > dense_list,
          "dense vector: sieve beats list I/O (crossover exists)",
          dense_sieve, dense_list);
    const double subarray_list = bw(1024, 8192, NoncontigStrategy::kListIo);
    const double subarray_sieve = bw(1024, 8192, NoncontigStrategy::kSieve);
    Check(subarray_list > subarray_sieve,
          "subarray tile: list I/O beats sieve", subarray_list,
          subarray_sieve);
  }

  // --------------------------------------------------- §3.2 worked example
  {
    using namespace dpfs::layout;
    const std::uint64_t k64 = 64 * 1024;
    const BrickMap linear =
        BrickMap::LinearArray({k64, k64}, 1, 64 * 1024).value();
    const BrickMap multidim =
        BrickMap::Multidim({k64, k64}, {256, 256}, 1).value();
    const Region column{{0, 0}, {k64, 1}};
    const double linear_bricks =
        static_cast<double>(linear.SummarizeRegion(column).value().size());
    const double multidim_bricks =
        static_cast<double>(multidim.SummarizeRegion(column).value().size());
    std::printf("-- Section 3.2 --\n");
    Check(linear_bricks == 65536.0,
          "64Kx64K column touches 65536 linear bricks", linear_bricks,
          65536.0);
    Check(multidim_bricks == 256.0,
          "64Kx64K column touches 256 multidim bricks", multidim_bricks,
          256.0);
  }

  // --------------------------------------------------- §4.2 worked example
  {
    using namespace dpfs::layout;
    const BrickMap map = BrickMap::Linear(32 * 1024, 1024).value();
    const BrickDistribution dist = BrickDistribution::RoundRobin(32, 4).value();
    PlanOptions general;
    general.combine = false;
    PlanOptions combined;
    combined.combine = true;
    const double general_requests = static_cast<double>(
        PlanByteAccess(map, dist, 0, 0, 8 * 1024, general)
            .value()
            .num_requests());
    const double combined_requests = static_cast<double>(
        PlanByteAccess(map, dist, 0, 0, 8 * 1024, combined)
            .value()
            .num_requests());
    std::printf("-- Section 4.2 --\n");
    Check(general_requests == 8.0, "general approach: 8 requests",
          general_requests, 8.0);
    Check(combined_requests == 4.0, "combined approach: 4 requests",
          combined_requests, 4.0);
  }

  // ------------------------------------ replication (bench/micro_degraded)
  {
    using namespace dpfs::layout;
    std::printf("-- Replication (docs/REPLICATION.md) --\n");
    ReplicationBenchConfig config;
    config.performance.assign(config.io_nodes, 1);
    const auto servers =
        UniformServers(dpfs::simnet::Class1(), config.io_nodes);
    const auto app_bw = [&](const ReplicationBenchConfig& c,
                            const IoPlan& plan,
                            const auto& models) {
      const double app_bytes =
          static_cast<double>(c.bytes_per_client) * c.compute_nodes;
      return app_bytes / (1024.0 * 1024.0) /
             MustReplay(plan, models).makespan_s;
    };

    // R=1 is the unreplicated system, byte for byte: same plan, same cost.
    config.spec.factor = 1;
    const ReplicatedWorkload r1 = BuildReplicatedWorkload(config).value();
    const IoPlan r1_plan =
        BuildReplicatedPlan(config, r1, IoDirection::kWrite).value();
    StripingAlgConfig unreplicated;
    unreplicated.compute_nodes = config.compute_nodes;
    unreplicated.io_nodes = config.io_nodes;
    unreplicated.bytes_per_client = config.bytes_per_client;
    unreplicated.brick_bytes = config.brick_bytes;
    unreplicated.performance = config.performance;
    const IoPlan plain =
        BuildStripingAlgPlan(unreplicated, PlacementPolicy::kGreedy,
                             /*combine=*/true, IoDirection::kWrite)
            .value();
    Check(static_cast<double>(r1_plan.total_requests()) ==
              static_cast<double>(plain.total_requests()),
          "R=1 write plan is the unreplicated plan (request count)",
          static_cast<double>(r1_plan.total_requests()),
          static_cast<double>(plain.total_requests()));
    Check(static_cast<double>(r1_plan.total_transfer_bytes()) ==
              static_cast<double>(plain.total_transfer_bytes()),
          "R=1 write plan is the unreplicated plan (wire bytes)",
          static_cast<double>(r1_plan.total_transfer_bytes()),
          static_cast<double>(plain.total_transfer_bytes()));

    // Every copy crosses the wire: write bandwidth falls roughly as 1/R.
    const double w1 = app_bw(config, r1_plan, servers);
    config.spec.factor = 2;
    const ReplicatedWorkload r2 = BuildReplicatedWorkload(config).value();
    const double w2 = app_bw(
        config, BuildReplicatedPlan(config, r2, IoDirection::kWrite).value(),
        servers);
    config.spec.factor = 3;
    const ReplicatedWorkload r3 = BuildReplicatedWorkload(config).value();
    const double w3 = app_bw(
        config, BuildReplicatedPlan(config, r3, IoDirection::kWrite).value(),
        servers);
    Check(w1 > 1.8 * w2 && w1 < 2.2 * w2,
          "R=2 writes cost ~2x the application bandwidth", w1, 2 * w2);
    Check(w2 > w3, "write bandwidth keeps falling at R=3", w2, w3);

    // Degraded reads serve every byte from the survivors, at a price.
    config.spec.factor = 2;
    const IoPlan healthy =
        BuildReplicatedPlan(config, r2, IoDirection::kRead).value();
    const IoPlan degraded = DegradeReadPlan(healthy, r2, /*dead=*/0).value();
    Check(static_cast<double>(degraded.total_useful_bytes()) ==
              static_cast<double>(healthy.total_useful_bytes()),
          "degraded read still serves every byte",
          static_cast<double>(degraded.total_useful_bytes()),
          static_cast<double>(healthy.total_useful_bytes()));
    const double healthy_bw = app_bw(config, healthy, servers);
    const double degraded_bw = app_bw(config, degraded, servers);
    Check(degraded_bw < healthy_bw,
          "degraded read costs more than healthy", degraded_bw, healthy_bw);

    // Cross-site R=2 (site B = geo-wan): the WAN gates writes, and only
    // §4.2 combination keeps a whole-site read failover usable.
    ReplicationBenchConfig geo = config;
    geo.spec.domains.assign(geo.io_nodes, 0);
    std::vector<dpfs::simnet::StorageClassModel> geo_servers;
    for (std::uint32_t s = 0; s < geo.io_nodes; ++s) {
      const bool site_b = s >= geo.io_nodes / 2;
      geo.spec.domains[s] = site_b ? 1 : 0;
      geo_servers.push_back(site_b ? dpfs::simnet::GeoWan()
                                   : dpfs::simnet::Class1());
    }
    geo.performance =
        dpfs::simnet::NormalizedPerformance(geo_servers, geo.brick_bytes);
    const ReplicatedWorkload geo_workload =
        BuildReplicatedWorkload(geo).value();
    const double geo_write = app_bw(
        geo,
        BuildReplicatedPlan(geo, geo_workload, IoDirection::kWrite).value(),
        geo_servers);
    Check(geo_write < w2, "cross-site write is gated by the WAN ack",
          geo_write, w2);
    double retained[2] = {0, 0};  // [0] combined, [1] per-brick
    for (const int per_brick : {0, 1}) {
      geo.combine = per_brick == 0;
      const IoPlan healthy_geo =
          BuildReplicatedPlan(geo, geo_workload, IoDirection::kRead).value();
      IoPlan site_down = healthy_geo;
      for (ServerId dead = 0; dead < geo.io_nodes / 2; ++dead) {
        site_down = DegradeReadPlan(site_down, geo_workload, dead).value();
      }
      retained[per_brick] = app_bw(geo, site_down, geo_servers) /
                            app_bw(geo, healthy_geo, geo_servers);
    }
    Check(retained[0] > 0.8,
          "combined bulk reads survive a whole-site failover", retained[0],
          0.8);
    Check(retained[1] < 0.6,
          "per-brick reads collapse against the WAN latency", retained[1],
          0.6);
    Check(retained[0] > 1.5 * retained[1],
          "request combination is what keeps WAN failover usable",
          retained[0], retained[1]);
  }

  std::printf("\n%s: %d claim(s) violated\n",
              g_failures == 0 ? "ALL SHAPES HOLD" : "SHAPE CHECK FAILED",
              g_failures);
  return g_failures == 0 ? 0 : 1;
}
