// Micro-benchmarks of the real TCP data path: a live in-process cluster,
// measuring wire throughput of reads/writes through the full client stack
// (planner → connection pool → framing → server → subfile store).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/metrics.h"
#include "core/cluster.h"

namespace {

using dpfs::Bytes;
using dpfs::client::CreateOptions;
using dpfs::client::FileHandle;
using dpfs::client::IoOptions;
using dpfs::core::ClusterOptions;
using dpfs::core::LocalCluster;

struct Fixture {
  std::unique_ptr<LocalCluster> cluster;
  FileHandle handle;

  static Fixture Make(std::uint32_t servers, std::uint64_t file_bytes,
                      std::uint64_t brick_bytes) {
    Fixture fixture;
    ClusterOptions options;
    options.num_servers = servers;
    fixture.cluster = LocalCluster::Start(std::move(options)).value();
    CreateOptions create;
    create.total_bytes = file_bytes;
    create.brick_bytes = brick_bytes;
    fixture.handle =
        fixture.cluster->fs()->Create("/bench.bin", create).value();
    return fixture;
  }
};

void BM_WriteThroughput(benchmark::State& state) {
  const std::uint64_t chunk = 1 << 20;
  Fixture fixture = Fixture::Make(4, chunk, 64 * 1024);
  const Bytes data(chunk, 0x5A);
  for (auto _ : state) {
    const dpfs::Status status =
        fixture.cluster->fs()->WriteBytes(fixture.handle, 0, data);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_WriteThroughput)->Unit(benchmark::kMillisecond);

void BM_ReadThroughput(benchmark::State& state) {
  const std::uint64_t chunk = 1 << 20;
  Fixture fixture = Fixture::Make(4, chunk, 64 * 1024);
  const Bytes data(chunk, 0x5A);
  (void)fixture.cluster->fs()->WriteBytes(fixture.handle, 0, data);
  Bytes out(chunk);
  for (auto _ : state) {
    const dpfs::Status status =
        fixture.cluster->fs()->ReadBytes(fixture.handle, 0, out);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
}
BENCHMARK(BM_ReadThroughput)->Unit(benchmark::kMillisecond);

void BM_CombinedVsGeneralRead(benchmark::State& state) {
  // range(0): 0 = general (per-brick requests), 1 = combined.
  const std::uint64_t chunk = 1 << 20;
  Fixture fixture = Fixture::Make(4, chunk, 16 * 1024);  // 64 bricks
  const Bytes data(chunk, 0x77);
  (void)fixture.cluster->fs()->WriteBytes(fixture.handle, 0, data);
  Bytes out(chunk);
  IoOptions options;
  options.combine = state.range(0) == 1;
  for (auto _ : state) {
    const dpfs::Status status =
        fixture.cluster->fs()->ReadBytes(fixture.handle, 0, out, options);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
  state.SetLabel(options.combine ? "combined" : "general");
}
BENCHMARK(BM_CombinedVsGeneralRead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_CachedVsUncachedRead(benchmark::State& state) {
  // range(0): 0 = no client brick cache, 1 = cache enabled (hot after the
  // first iteration).
  const std::uint64_t chunk = 1 << 20;
  Fixture fixture = Fixture::Make(4, chunk, 64 * 1024);
  const Bytes data(chunk, 0x42);
  (void)fixture.cluster->fs()->WriteBytes(fixture.handle, 0, data);
  if (state.range(0) == 1) {
    fixture.cluster->fs()->EnableBrickCache(8 << 20);
  }
  Bytes out(chunk);
  for (auto _ : state) {
    const dpfs::Status status =
        fixture.cluster->fs()->ReadBytes(fixture.handle, 0, out);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(chunk));
  state.SetLabel(state.range(0) == 1 ? "cached" : "uncached");
}
BENCHMARK(BM_CachedVsUncachedRead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SmallRegionRead(benchmark::State& state) {
  // Latency of a small strided region read through the multidim path.
  ClusterOptions options;
  options.num_servers = 4;
  auto cluster = LocalCluster::Start(std::move(options)).value();
  CreateOptions create;
  create.level = dpfs::layout::FileLevel::kMultidim;
  create.array_shape = {1024, 1024};
  create.brick_shape = {128, 128};
  FileHandle handle = cluster->fs()->Create("/grid.bin", create).value();
  const Bytes all(1024 * 1024, 1);
  (void)cluster->fs()->WriteRegion(handle, {{0, 0}, {1024, 1024}}, all);

  Bytes column(1024);
  for (auto _ : state) {
    const dpfs::Status status = cluster->fs()->ReadRegion(
        handle, {{0, 511}, {1024, 1}}, column);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
}
BENCHMARK(BM_SmallRegionRead)->Unit(benchmark::kMicrosecond);

void BM_OpenFromMetadata(benchmark::State& state) {
  Fixture fixture = Fixture::Make(4, 1 << 20, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.cluster->fs()->Open("/bench.bin"));
  }
}
BENCHMARK(BM_OpenFromMetadata)->Unit(benchmark::kMicrosecond);

}  // namespace

// BENCHMARK_MAIN(), plus the metrics snapshot the real-TCP runs filled in
// (this bench exercises the full client→server stack, so every hot-path
// instrument is live; docs/OBSERVABILITY.md).
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  std::printf("\n--- metrics snapshot (docs/OBSERVABILITY.md) ---\n%s"
              "--- end metrics snapshot ---\n",
              dpfs::metrics::Registry::Global().TextSnapshot().c_str());
  return 0;
}
