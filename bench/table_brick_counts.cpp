// The §3.2 worked example, printed as a table: brick counts for column
// access under linear vs multidimensional striping, at the paper's two
// scales (8x8 toy and 64K x 64K).
#include <cstdio>

#include "layout/brick_map.h"

namespace {

using dpfs::layout::BrickMap;
using dpfs::layout::Region;

struct Case {
  const char* name;
  std::uint64_t dim;           // square array edge (bytes)
  std::uint64_t linear_brick;  // bytes
  std::uint64_t tile;          // multidim tile edge
  std::uint64_t column_width;  // columns accessed
};

void Run(const Case& c) {
  const BrickMap linear =
      BrickMap::LinearArray({c.dim, c.dim}, 1, c.linear_brick).value();
  const BrickMap multidim =
      BrickMap::Multidim({c.dim, c.dim}, {c.tile, c.tile}, 1).value();
  const Region column{{0, 0}, {c.dim, c.column_width}};

  const auto linear_usage = linear.SummarizeRegion(column).value();
  const auto multidim_usage = multidim.SummarizeRegion(column).value();

  std::uint64_t linear_useful = 0;
  for (const auto& [brick, usage] : linear_usage) {
    linear_useful += usage.useful_bytes;
  }
  std::uint64_t multidim_useful = 0;
  for (const auto& [brick, usage] : multidim_usage) {
    multidim_useful += usage.useful_bytes;
  }

  std::printf("%-24s %10zu %12zu %10.0fx %14.6f %14.6f\n", c.name,
              linear_usage.size(), multidim_usage.size(),
              static_cast<double>(linear_usage.size()) /
                  static_cast<double>(multidim_usage.size()),
              static_cast<double>(linear_useful) /
                  static_cast<double>(linear_usage.size() * c.linear_brick),
              static_cast<double>(multidim_useful) /
                  static_cast<double>(multidim_usage.size() *
                                      multidim.brick_bytes()));
}

}  // namespace

int main() {
  std::printf("=== Section 3.2 worked example: bricks touched by a column "
              "access ===\n\n");
  std::printf("%-24s %10s %12s %10s %14s %14s\n", "case", "linear",
              "multidim", "reduction", "linear-usefrac",
              "multidim-usefrac");
  // The 8x8 illustration (Figs 5 and 6): 2 columns, 4-element bricks vs 2x2.
  Run({"8x8, 2 columns", 8, 4, 2, 2});
  // The full-scale example: one column of a 64K x 64K array, 64 KB bricks vs
  // 256x256 tiles — 65536 bricks vs 256 ("only 256 bricks are needed").
  Run({"64Kx64K, 1 column", 64 * 1024, 64 * 1024, 256, 1});
  return 0;
}
