// The calibration table: every storage-class model's constants, its solo
// per-brick access time (the §4.1 calibration measurement), and the
// normalized performance number the greedy algorithm derives from it.
// This is the ground truth behind EXPERIMENTS.md's absolute numbers.
#include <cstdio>

#include "simnet/storage_class.h"

int main() {
  using namespace dpfs::simnet;
  const StorageClassModel models[] = {Class1(), Class2(), Class3(),
                                      RemoteWan()};
  constexpr std::uint64_t kBrick = 64 * 1024;

  std::printf("=== Storage class calibration (src/simnet/storage_class.cpp) "
              "===\n\n");
  std::printf("%-12s %10s %10s %10s %10s %12s %8s\n", "class", "link MB/s",
              "lat ms", "disk MB/s", "seek ms", "64K brick ms", "perf");

  std::vector<StorageClassModel> all(std::begin(models), std::end(models));
  const std::vector<std::uint32_t> perf = NormalizedPerformance(all, kBrick);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const StorageClassModel& model = all[i];
    std::printf("%-12s %10.1f %10.2f %10.1f %10.2f %12.2f %8u\n",
                model.name.c_str(), model.link_bytes_per_s / (1024.0 * 1024),
                model.link_latency_s * 1e3,
                model.disk_bytes_per_s / (1024.0 * 1024),
                model.disk_overhead_s * 1e3,
                model.SoloBrickTime(kBrick) * 1e3, perf[i]);
  }
  std::printf("\nperf = round(solo_brick_time / fastest_solo_brick_time), "
              "the paper's normalized\nperformance number (%s is the "
              "baseline; class3/class1 = %.2f, the paper's ~3x).\n",
              all[0].name.c_str(),
              all[2].SoloBrickTime(kBrick) / all[0].SoloBrickTime(kBrick));
  return 0;
}
