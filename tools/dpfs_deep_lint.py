#!/usr/bin/env python3
"""dpfs_deep_lint: whole-program semantic analysis over compile_commands.json.

The fourth static-analysis layer (docs/STATIC_ANALYSIS.md). Clang's
thread-safety analysis is per-function and tools/dpfs_lint.py is per-line;
neither can see properties that only exist across translation units. This
tool builds a whole-program model (functions, lock acquisitions with held
sets, call edges) and enforces three invariants on it:

  lock-order-cycle      The global lock-acquisition graph (an edge A -> B
                        for every site that acquires B while holding A,
                        directly or through a call chain) must be acyclic.
                        A cycle is a deadlock waiting for the right thread
                        interleaving. Same-capability nesting (acquiring
                        many instances of one lock class in a loop) is a
                        self-edge and needs a dpfs:lock-order-ok waiver
                        stating the total order that makes it safe.
  reactor-blocking      No call path from a reactor root (EventLoop::Run
                        and the handler entry points it invokes) may reach
                        a cataloged blocking primitive (flock, sleep_for,
                        blocking connect/accept/recv/send, CondVar::Wait,
                        metadb::Database mutation entry points) without a
                        dpfs:blocking-ok waiver. One blocked wakeup stalls
                        every connection the loop serves.
  unchecked-status      Every `(void)`-discard of a Status/Result-returning
                        call carries a dpfs:unchecked(reason) waiver. The
                        discard is scanned on blanked code, so string or
                        comment tricks cannot fabricate or hide one.
  no-tsa-justification  Every DPFS_NO_THREAD_SAFETY_ANALYSIS carries a
                        dpfs:no-tsa(reason) waiver nearby: the escape hatch
                        must say why the unchecked locking is sound.

Waiver syntax (checked: the reason must be non-empty):

  // dpfs:blocking-ok(<reason>)    on the call line / up to 2 lines above,
                                   or in the comment block right above a
                                   function definition to sanction every
                                   call that function makes
  // dpfs:lock-order-ok(<reason>)  on the acquisition line / 2 lines above
  // dpfs:unchecked(<reason>)      on the (void) line / line above
  // dpfs:no-tsa(<reason>)         within 5 lines above the annotation

Frontends: with python clang.cindex + libclang installed the model is
built from the real AST of every TU in compile_commands.json
(--frontend=libclang). Without them (the common case in minimal CI
containers) a bundled scope-tracking textual frontend parses the tree
directly; it is the reference implementation the --self-test fixtures pin.
--frontend=auto (default) prefers libclang and degrades to textual with a
note. Both frontends fill the same IR; every analysis above runs on either.

The tool also *generates* the discovered global lock order into
docs/STATIC_ANALYSIS.md between the `deep-lint:lock-order` markers
(--update-docs rewrites the block; the default run fails on drift), so the
documented order is always the one the code actually implements.

Usage:
  tools/dpfs_deep_lint.py [--root DIR] [--compdb FILE] [--frontend F]
  tools/dpfs_deep_lint.py --update-docs     rewrite the lock-order block
  tools/dpfs_deep_lint.py --self-test       run the seeded-violation
                                            fixtures in deep_lint_fixtures
  tools/dpfs_deep_lint.py --dump-ir         debug: print the parsed model

Exit status: 0 clean, 1 violations ("path:line: check: message"), 2 usage.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections import defaultdict
from dataclasses import dataclass, field
from pathlib import Path

FIXTURE_DIR_NAME = "deep_lint_fixtures"
SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

# --- configuration: roots, blocking catalog, lock guards ---------------------

# Call-graph roots for the reactor-blocking check, matched as qualified-name
# suffixes. EventLoop::Run is the loop itself; the Handler std::function it
# invokes is opaque to any AST, so the two functions bound into it at
# EventLoop::Start call sites are listed explicitly (they run on the loop
# thread). Every root must resolve to a parsed function definition — a
# rename fails the lint instead of silently analyzing nothing.
REACTOR_ROOTS = (
    "server::EventLoop::Run",
    "server::IoServer::HandleRequest",
    "metad::MetadService::HandleRequest",
)
# In --self-test the fixture tree defines its own miniature reactor.
SELF_TEST_ROOTS = ("server::EventLoop::Run",)

# Blocking primitives by callee name. `None` for the class means the bare
# name is blocking whoever owns it (OS calls, std helpers); a class name
# restricts the match to calls whose receiver/qualifier resolves to that
# class (so e.g. an unrelated Execute() elsewhere is not blocking).
BLOCKING_CALLEES = {
    # OS / std blocking primitives.
    "flock": None,
    "sleep_for": None,
    "sleep_until": None,
    "sleep": None,
    "usleep": None,
    "nanosleep": None,
    "poll": None,
    "select": None,
    # Blocking socket surface (the *Some / *NonBlocking variants are the
    # nonblocking ones and are not listed).
    "Connect": "TcpSocket",
    "SendAll": "TcpSocket",
    "RecvExact": "TcpSocket",
    "Accept": "TcpListener",
    "RecvFrame": None,
    "SendFrame": None,
    "connect": None,
    "recv": None,
    "accept": None,
    # Lock waits park the thread until another thread signals.
    "Wait": "CondVar",
    "WaitFor": "CondVar",
    # metadb mutation entry points commit through a WAL fsync; Open can
    # spin on the advisory flock of a concurrently-held directory.
    "Execute": "Database",
    "ExecuteStatement": "Database",
    "Checkpoint": "Database",
    "CreateIndex": "Database",
    "Open": "Database",
}
# ShardedDatabase forwards to Database; its entry points block identically.
for _name in ("Execute", "ExecuteStatement", "Checkpoint", "CreateIndex",
              "Open"):
    BLOCKING_CALLEES.setdefault(_name, "Database")
BLOCKING_CLASS_ALIASES = {"Database": {"Database", "ShardedDatabase"}}

# RAII lock guards (common/mutex.h): type name -> shared? (reader locks
# still order against writers, so shared/exclusive feed one graph).
GUARD_TYPES = {"MutexLock": False, "WriterMutexLock": False,
               "ReaderMutexLock": True}
MANUAL_LOCK_METHODS = {"lock", "lock_shared"}
MANUAL_UNLOCK_METHODS = {"unlock", "unlock_shared"}
LOCK_MEMBER_TYPES = {"Mutex", "SharedMutex"}

WAIVER_RE = {
    "blocking": re.compile(r"dpfs:blocking-ok\(([^)]*)\)"),
    "lock-order": re.compile(r"dpfs:lock-order-ok\(([^)]*)\)"),
    "unchecked": re.compile(r"dpfs:unchecked\(([^)]*)\)"),
    "no-tsa": re.compile(r"dpfs:no-tsa\(([^)]*)\)"),
}

LOCK_ORDER_BEGIN = "<!-- deep-lint:lock-order-begin -->"
LOCK_ORDER_END = "<!-- deep-lint:lock-order-end -->"

# --- shared text utilities (mirrors dpfs_lint's stripper) --------------------

_STRIP_RE = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:\\.|[^"\\\n])*"|\'(?:\\.|[^\'\\\n])*\'',
    re.DOTALL,
)


_PREPROC_RE = re.compile(r"^[ \t]*#(?:[^\n\\]|\\\n)*", re.MULTILINE)


def blank_comments_and_strings(text: str) -> str:
    """Blanks comments and literals, preserving newlines and column offsets."""
    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return _STRIP_RE.sub(blank, text)


def blank_preprocessor(code: str) -> str:
    """Blanks preprocessor directives (incl. continuations) so #include /
    #define bodies neither pollute statement heads nor fake call sites."""
    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))
    return _PREPROC_RE.sub(blank, code)


def comment_lines(text: str) -> dict[int, str]:
    """line number -> the comment *block* text visible from that line.

    Contiguous comment lines are joined (newlines become spaces) and every
    line of the block maps to the full joined text, so a waiver like
    `dpfs:unchecked(reason spanning\n// two lines)` matches from any line
    the block touches."""
    per_line: dict[int, str] = defaultdict(str)
    for match in _STRIP_RE.finditer(text):
        token = match.group(0)
        if not token.startswith(("//", "/*")):
            continue
        line = text.count("\n", 0, match.start()) + 1
        for offset, part in enumerate(token.split("\n")):
            per_line[line + offset] += part
    out: dict[int, str] = {}
    block: list[int] = []
    for line in sorted(per_line) + [float("inf")]:
        if block and line != block[-1] + 1:
            joined = " ".join(
                re.sub(r"^\s*(?://|/\*+|\*+/?)\s*", "", per_line[b])
                for b in block)
            for b in block:
                out[b] = joined
            block = []
        if line != float("inf"):
            block.append(line)
    return out


# --- the IR ------------------------------------------------------------------

@dataclass
class Acquisition:
    lock: str               # canonical lock id, e.g. "FdCache::mu_"
    line: int
    held: tuple[str, ...]   # locks already held at this site
    in_loop_indexed: bool   # same-class multi-instance acquisition in a loop
    waived: str | None      # dpfs:lock-order-ok reason, if present


@dataclass
class CallSite:
    callee: str             # last name component, e.g. "HandleRequest"
    qualifier: str          # explicit qualifier ("net::" / "Class::"), or ""
    receiver: str           # receiver expression before . / ->, or ""
    line: int
    held: tuple[str, ...]
    blocking_waiver: str | None


@dataclass
class Discard:
    callee: str
    line: int
    waiver: str | None


@dataclass
class FunctionInfo:
    qualified: str          # e.g. "dpfs::server::EventLoop::Run"
    cls: str                # enclosing class name or ""
    file: Path
    line: int
    entry_locks: tuple[str, ...] = ()      # DPFS_REQUIRES/ACQUIRE at entry
    acquisitions: list[Acquisition] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)
    discards: list[Discard] = field(default_factory=list)
    blocking_waiver: str | None = None     # function-level dpfs:blocking-ok
    # local/parameter name -> type, for the types the analyses care about
    # (lock capabilities and blocking-catalog classes).
    local_types: dict[str, str] = field(default_factory=dict)


@dataclass
class Model:
    functions: list[FunctionInfo] = field(default_factory=list)
    # member field name -> {owning class}; resolves "mu_" to "FdCache::mu_".
    lock_owners: dict[str, set[str]] = field(
        default_factory=lambda: defaultdict(set))
    # (class, member field) -> member type's class name; resolves receivers.
    member_types: dict[tuple[str, str], str] = field(default_factory=dict)
    # function last-name -> returns Status/Result (for the discard check).
    status_returning: set[str] = field(default_factory=set)
    # DPFS_NO_THREAD_SAFETY_ANALYSIS sites: (file, line, waiver-reason|None).
    no_tsa_sites: list[tuple[Path, int, str | None]] = field(
        default_factory=list)


class Violation:
    def __init__(self, path: Path, line: int, check: str, message: str):
        self.path, self.line, self.check, self.message = (
            path, line, check, message)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.check}: {self.message}"


# --- source discovery --------------------------------------------------------

def load_compdb(path: Path) -> list[Path] | None:
    if not path.is_file():
        return None
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    files = []
    for entry in entries:
        file = Path(entry.get("directory", "."), entry["file"]).resolve()
        if file.suffix in SOURCE_SUFFIXES:
            files.append(file)
    return files


def iter_sources(root: Path, compdb: Path | None) -> list[Path]:
    """All repo sources under src/: compdb TUs (if available) plus headers.

    The compdb scopes the .cpp set to what the build actually compiles;
    headers are not TUs, so they are always globbed directly.
    """
    src = root / "src"
    seen: dict[Path, None] = {}
    compiled = load_compdb(compdb) if compdb else None
    if compiled:
        for file in sorted(compiled):
            try:
                file.relative_to(src.resolve())
            except ValueError:
                continue
            seen.setdefault(file, None)
    if src.is_dir():
        for file in sorted(src.rglob("*")):
            if file.suffix not in SOURCE_SUFFIXES:
                continue
            if compiled and file.suffix in {".cpp", ".cc"} \
                    and file.resolve() not in seen:
                continue  # not part of the build (e.g. platform-gated)
            seen.setdefault(file.resolve(), None)
    return list(seen)


# --- textual frontend --------------------------------------------------------

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "do", "else", "return",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "case", "default", "co_await", "co_return", "throw", "assert",
}

HEAD_NAME_RE = re.compile(r"([~\w]+(?:::[~\w]+)*)\s*$")
CALL_RE = re.compile(
    r"(?:([\w:]+)::)?"          # explicit qualifier
    r"(?:\b([A-Za-z_]\w*)\s*(?:\.|->)\s*)?"  # receiver expression tail
    r"\b([A-Za-z_]\w*)\s*\(")
ANNOT_RE = re.compile(
    r"\b(DPFS_REQUIRES|DPFS_ACQUIRE|DPFS_ACQUIRE_SHARED|"
    r"DPFS_REQUIRES_SHARED)\s*\(([^)]*)\)")
GUARD_DECL_RE = re.compile(
    r"\b(" + "|".join(GUARD_TYPES) + r")\s+(\w+)\s*[({]")
MANUAL_LOCK_RE = re.compile(
    r"([\w.\[\]>\-]+?)\s*(?:\.|->)\s*(lock|lock_shared|unlock|"
    r"unlock_shared)\s*\(\s*\)")
MEMBER_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|const\s+)*"
    r"([A-Za-z_][\w:]*(?:<[^;{}]*>)?)[&*\s]+(\w+)\s*(?:=[^;]*|\{[^;]*\})?;",
    re.MULTILINE)
STATUS_FN_RE = re.compile(
    r"\b(?:Status|Result<[^;{()=]*>)\s+(?:[\w:]+::)?(\w+)\s*\(")
DISCARD_RE = re.compile(r"\(void\)\s*([^;]*?);")
# Function-local declarations (incl. parameters): `Type name` with an
# uppercase class-style type name. Feeds receiver-type resolution so
# `reader.ReadBytes()` binds to BinaryReader::ReadBytes, not to every
# ReadBytes in the repo.
LOCAL_TYPED_RE = re.compile(
    r"\b(?:[\w]+::)*([A-Z]\w*)\s*[&*]?\s+(\w+)\s*(?:[;,)({=]|$)")
VOID_NAME_CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
LOOP_HEAD_RE = re.compile(r"^\s*(for|while)\b")
LAMBDA_INTRO_RE = re.compile(
    r"\]\s*(?:\([^()]*(?:\([^()]*\)[^()]*)*\))?\s*(?:mutable\b\s*)?"
    r"(?:noexcept\b\s*)?(?:->\s*[\w:<>&*\s]+?)?\s*\{")


def _last_name(qualified: str) -> str:
    return qualified.rsplit("::", 1)[-1]


class _Scope:
    __slots__ = ("kind", "name", "start", "acquisitions", "is_loop")

    def __init__(self, kind: str, name: str = "", start: int = 0,
                 is_loop: bool = False):
        self.kind = kind            # namespace | class | function | block
        self.name = name
        self.start = start
        self.acquisitions: list[str] = []  # lock ids scoped to this block
        self.is_loop = is_loop


class TextualFrontend:
    """Scope-tracking parser: namespaces, classes, function bodies, and the
    per-statement events the analyses need. Not a full C++ parser — it
    tracks brace/paren nesting over comment/string-blanked text, which is
    enough to attribute every acquisition and call to the right function
    with the right held-lock set."""

    def __init__(self, root: Path):
        self.root = root
        self.model = Model()
        # (class, method last-name) -> raw DPFS_REQUIRES/DPFS_ACQUIRE args
        # from the *declaration* (annotations live in headers; out-of-line
        # definitions do not repeat them). Resolved lazily at definition
        # time, when the lock-owner maps are complete.
        self.decl_entry_locks: dict[tuple[str, str], tuple[str, ...]] = {}

    # -- pass 1: declarations (lock members, member types, return types) ----

    @staticmethod
    def _unwrap_type(mtype: str) -> str:
        wrapper = re.compile(
            r"(?:std::)?(?:unique_ptr|shared_ptr|vector|optional|array)"
            r"<\s*([^<>]*(?:<[^<>]*>)?[^<>]*?)\s*(?:,[^<>]*)?>")
        prev = None
        while prev != mtype:
            prev = mtype
            mtype = wrapper.sub(r"\1", mtype)
        return _last_name(mtype.strip().rstrip("&* "))

    def scan_declarations(self, path: Path, code: str) -> None:
        for match in STATUS_FN_RE.finditer(code):
            self.model.status_returning.add(match.group(1))
        # Member declarations inside class bodies: walk class extents.
        for cls, body in self._class_bodies(code):
            for member in MEMBER_DECL_RE.finditer(body):
                mtype, name = member.group(1), member.group(2)
                base = self._unwrap_type(mtype)
                if base in LOCK_MEMBER_TYPES:
                    self.model.lock_owners[name].add(cls)
                self.model.member_types[(cls, name)] = base
            for decl in re.finditer(
                    r"(\w+)\s*\([^;{}]*\)[^;{}]*?"
                    r"\b(DPFS_REQUIRES|DPFS_REQUIRES_SHARED|DPFS_ACQUIRE|"
                    r"DPFS_ACQUIRE_SHARED)\s*\(([^)]+)\)", body):
                key = (cls, decl.group(1))
                args = tuple(a.strip() for a in decl.group(3).split(",")
                             if a.strip())
                self.decl_entry_locks[key] = (
                    self.decl_entry_locks.get(key, ()) + args)

    def _class_bodies(self, code: str):
        """Yields (class name, body text) for every class/struct body."""
        for match in re.finditer(
                r"\b(?:class|struct)\s+(?:DPFS_\w+(?:\([^)]*\))?\s+)*(\w+)"
                r"[^;{()]*\{", code):
            name, depth, i = match.group(1), 1, match.end()
            start = i
            while i < len(code) and depth:
                if code[i] == "{":
                    depth += 1
                elif code[i] == "}":
                    depth -= 1
                i += 1
            yield name, code[start:i - 1]

    # -- pass 2: function bodies -------------------------------------------

    def scan_file(self, path: Path, text: str) -> None:
        code = blank_preprocessor(blank_comments_and_strings(text))
        comments = comment_lines(text)
        self._scan_no_tsa(path, code, comments)
        if path.name == "mutex.h":
            return  # the lock primitives themselves, not lock *users*
        lines = code.split("\n")
        self._walk(path, code, lines, comments)

    def _scan_no_tsa(self, path: Path, code: str,
                     comments: dict[int, str]) -> None:
        rel = _relpath(path, self.root)
        if rel.name == "thread_annotations.h":
            return  # the macro's own definition
        for lineno, line in enumerate(code.split("\n"), start=1):
            if "DPFS_NO_THREAD_SAFETY_ANALYSIS" not in line:
                continue
            reason = None
            for probe in range(lineno, max(0, lineno - 6), -1):
                match = WAIVER_RE["no-tsa"].search(comments.get(probe, ""))
                if match:
                    reason = match.group(1).strip() or None
                    break
            self.model.no_tsa_sites.append((rel, lineno, reason))

    def _waiver_near(self, kind: str, comments: dict[int, str], line: int,
                     reach: int) -> str | None:
        for probe in range(line, max(0, line - reach - 1), -1):
            match = WAIVER_RE[kind].search(comments.get(probe, ""))
            if match:
                return match.group(1).strip() or ""
        return None

    def _walk(self, path: Path, code: str, lines: list[str],
              comments: dict[int, str]) -> None:
        rel = _relpath(path, self.root)
        stack: list[_Scope] = []
        fn: FunctionInfo | None = None
        fn_depth = 0  # stack length at which the current function began
        held: list[str] = []     # currently held lock ids, outermost first
        stmt_start = 0           # offset where the current statement began
        i, n = 0, len(code)
        while i < n:
            ch = code[i]
            if ch == "(":
                # Skip to the matching close so ';' inside for-heads and
                # braces inside lambda arguments don't terminate the
                # statement early. The skipped text stays part of the
                # statement slice and is scanned exactly once below.
                depth, j = 1, i + 1
                while j < n and depth:
                    if code[j] == "(":
                        depth += 1
                    elif code[j] == ")":
                        depth -= 1
                    j += 1
                i = j
                continue
            if ch == "{":
                head = code[stmt_start:i]
                lineno = code.count("\n", 0, i) + 1
                scope = self._classify(head, stack, fn, lineno)
                if scope.kind == "function" and fn is None:
                    fn = self._begin_function(rel, scope, head, lineno,
                                              comments, stack)
                    fn_depth = len(stack)
                    held = list(fn.entry_locks)
                elif fn is not None and scope.kind == "block":
                    # Control-flow head: scan it for calls (conditions run).
                    base = code.count("\n", 0, stmt_start) + 1
                    self._scan_statement(fn, head, base, comments, held,
                                         stack)
                stack.append(scope)
                stmt_start = i + 1
            elif ch in ";}":
                if fn is not None:
                    segment = code[stmt_start:i + (1 if ch == ";" else 0)]
                    if segment.strip():
                        base = code.count("\n", 0, stmt_start) + 1
                        self._scan_statement(fn, segment, base, comments,
                                             held, stack)
                if ch == "}" and stack:
                    scope = stack.pop()
                    for lock in scope.acquisitions:
                        if lock in held:
                            held.remove(lock)
                    if fn is not None and scope.kind == "function" \
                            and len(stack) == fn_depth:
                        self.model.functions.append(fn)
                        fn = None
                        held = []
                stmt_start = i + 1
            i += 1

    def _classify(self, head: str, stack: list[_Scope],
                  fn: FunctionInfo | None, lineno: int) -> _Scope:
        stripped = head.strip()
        ns = re.match(r"^namespace\s*([\w:]*)\s*$", stripped)
        if ns is not None:
            return _Scope("namespace", ns.group(1))
        if re.match(r"^(?:template\s*<[^{}]*>\s*)?(?:class|struct|union)\b",
                    stripped):
            m = re.search(r"\b(?:class|struct|union)\s+"
                          r"(?:DPFS_\w+(?:\([^)]*\))?\s+)*(\w+)", stripped)
            return _Scope("class", m.group(1) if m else "")
        if stripped.startswith("enum"):
            return _Scope("class", "")
        if fn is None:
            # At namespace/class scope a paren-head introduces a function
            # definition (control flow only exists inside functions).
            if "(" in stripped:
                return _Scope("function", start=lineno)
            return _Scope("block")
        return _Scope("block", is_loop=bool(LOOP_HEAD_RE.match(stripped)))

    def _begin_function(self, rel: Path, scope: _Scope, head: str,
                        lineno: int, comments: dict[int, str],
                        stack: list[_Scope]) -> FunctionInfo:
        # Name: identifier before the top-level '(' of the head; the
        # constructor init list after ')' may contain more parens.
        paren = head.find("(")
        name_match = HEAD_NAME_RE.search(head[:paren].rstrip())
        name = name_match.group(1) if name_match else "<anon>"
        namespaces = [s.name for s in stack if s.kind == "namespace" and
                      s.name]
        classes = [s.name for s in stack if s.kind == "class" and s.name]
        qualifier = "::".join(namespaces + classes)
        qualified = f"{qualifier}::{name}" if qualifier else name
        cls = classes[-1] if classes else ""
        if "::" in name:
            cls = name.rsplit("::", 2)[-2]
        # The head slice starts right after the previous statement; anchor
        # the definition (and its waiver lookup) at its first code line.
        # Comments are blanked, so leading whitespace skips past them.
        first_code = len(head) - len(head.lstrip())
        head_line = (lineno - head.count("\n") +
                     head.count("\n", 0, first_code))
        fn = FunctionInfo(qualified=qualified, cls=cls, file=rel,
                          line=head_line)
        entry: list[str] = []
        raw_args = [arg.strip()
                    for annot in ANNOT_RE.finditer(head)
                    for arg in annot.group(2).split(",") if arg.strip()]
        if not raw_args:
            # Out-of-line definition: the annotation lives on the header
            # declaration.
            raw_args = list(self.decl_entry_locks.get(
                (cls, _last_name(name)), ()))
        for match in LOCAL_TYPED_RE.finditer(head):
            fn.local_types[match.group(2)] = match.group(1)
        for arg in raw_args:
            lock = self._lock_id(arg, cls, fn)
            if lock:
                entry.append(lock)
        fn.entry_locks = tuple(entry)
        # A dpfs:blocking-ok in the doc comment right above the definition
        # sanctions every call the function makes.
        fn.blocking_waiver = self._waiver_near("blocking", comments,
                                               head_line - 1, 3)
        return fn

    def _lock_id(self, expr: str, cls: str,
                 fn: FunctionInfo | None = None) -> str | None:
        """Canonical lock id for an acquisition/annotation expression."""
        expr = expr.strip().lstrip("*&")
        if not expr:
            return None
        expr = re.sub(r"\[[^\]]*\]", "", expr)        # drop subscripts
        expr = re.sub(r"\([^()]*\)", "", expr)        # drop call args
        parts = re.split(r"\.|->", expr)
        fieldname = parts[-1].strip().strip("()")
        if not re.fullmatch(r"[\w]+", fieldname):
            return None
        if fn is not None and len(parts) == 1 and \
                fn.local_types.get(fieldname) in LOCK_MEMBER_TYPES:
            # A function-local lock: its identity is the declaring function.
            return f"{_last_name(fn.qualified)}::{fieldname}"
        owners = self.model.lock_owners.get(fieldname, set())
        if len(parts) > 1:
            # Receiver present: resolve its type through the member map.
            recv = parts[-2].strip()
            recv_type = self.model.member_types.get((cls, recv))
            if recv_type and recv_type in owners:
                return f"{recv_type}::{fieldname}"
        if cls in owners:
            return f"{cls}::{fieldname}"
        if len(owners) == 1:
            return f"{next(iter(owners))}::{fieldname}"
        if owners:
            return f"?::{fieldname}"
        return f"{cls or '?'}::{fieldname}"

    @staticmethod
    def _split_lambdas(segment: str) -> tuple[str, list[tuple[str, int]]]:
        """Blanks lambda bodies out of a statement and returns them
        separately with their offsets. A lambda body runs when invoked —
        for the repo's thread/handler lambdas that is another thread — so
        calls inside it must not inherit the statement's held-lock set."""
        bodies: list[tuple[str, int]] = []
        out = segment
        pos = 0
        while True:
            intro = LAMBDA_INTRO_RE.search(out, pos)
            if intro is None:
                break
            depth, j = 1, intro.end()
            while j < len(out) and depth:
                if out[j] == "{":
                    depth += 1
                elif out[j] == "}":
                    depth -= 1
                j += 1
            body = out[intro.end():j - 1]
            if body.strip():
                bodies.append((body, intro.end()))
            out = out[:intro.end()] + re.sub(r"[^\n]", " ", body) + out[j - 1:]
            pos = j
        return out, bodies

    def _scan_statement(self, fn: FunctionInfo, segment: str, base_line: int,
                        comments: dict[int, str], held: list[str],
                        stack: list[_Scope]) -> None:
        main, lambdas = self._split_lambdas(segment)
        self._scan_events(fn, main, segment, base_line, comments, held,
                          stack, deferred=False)
        for body, offset in lambdas:
            line = base_line + segment.count("\n", 0, offset)
            self._scan_events(fn, body, body, line, comments, [], stack,
                              deferred=True)

    def _scan_events(self, fn: FunctionInfo, text: str, raw: str,
                     base_line: int, comments: dict[int, str],
                     held: list[str], stack: list[_Scope],
                     deferred: bool) -> None:
        def line_at(offset: int) -> int:
            return base_line + text.count("\n", 0, offset)

        for local in LOCAL_TYPED_RE.finditer(text):
            fn.local_types.setdefault(local.group(2), local.group(1))
        in_loop = any(s.is_loop for s in stack)
        guard = GUARD_DECL_RE.search(text)
        manual = MANUAL_LOCK_RE.search(text)
        if (guard or manual) and not deferred:
            if guard:
                lineno = line_at(guard.start())
                arg_start = text.find("(", guard.start())
                arg = text[arg_start + 1:text.rfind(")")] \
                    if arg_start >= 0 else ""
                lock = self._lock_id(arg, fn.cls, fn)
                scope_holder = stack[-1] if stack else None
            else:
                lineno = line_at(manual.start())
                expr, method = manual.group(1), manual.group(2)
                lock = self._lock_id(expr, fn.cls, fn)
                if method in MANUAL_UNLOCK_METHODS:
                    if lock in held:
                        held.remove(lock)
                    return
                scope_holder = None  # manual lock: held to function end
            if lock is None:
                return
            indexed = in_loop and (
                "[" in text or "->" in text or "*it" in text)
            waiver = self._waiver_near("lock-order", comments, lineno, 2)
            fn.acquisitions.append(Acquisition(
                lock=lock, line=lineno, held=tuple(held),
                in_loop_indexed=bool(manual and indexed), waived=waiver))
            held.append(lock)
            if scope_holder is not None:
                scope_holder.acquisitions.append(lock)
            return

        for discard in DISCARD_RE.finditer(text):
            call = VOID_NAME_CALL_RE.search(discard.group(1))
            if call is None:
                continue
            lineno = line_at(discard.start())
            fn.discards.append(Discard(
                callee=call.group(1), line=lineno,
                waiver=self._waiver_near("unchecked", comments, lineno, 1)))

        for call in CALL_RE.finditer(text):
            qualifier, receiver, callee = (call.group(1) or "",
                                           call.group(2) or "",
                                           call.group(3))
            if callee in CONTROL_KEYWORDS or callee in GUARD_TYPES:
                continue
            if not receiver and not qualifier:
                pre = text[:call.start(3)].rstrip()
                if pre.endswith(".") or pre.endswith("->"):
                    # Member call on a complex expression. A singleton
                    # chain `X::Default().Y()` still names its class; any
                    # other shape (`rows().size()`) gets a sentinel so
                    # resolution does not match every same-named method
                    # in the repo.
                    chain = re.search(
                        r"([\w:]+)::\w+\s*\(\s*\)\s*(?:\.|->)$", pre)
                    qualifier = chain.group(1) if chain else ""
                    receiver = "" if chain else "<expr>"
            lineno = line_at(call.start())
            fn.calls.append(CallSite(
                callee=callee, qualifier=qualifier, receiver=receiver,
                line=lineno, held=tuple(held),
                blocking_waiver=self._waiver_near("blocking", comments,
                                                  lineno, 2)))

    def run(self, files: list[Path]) -> Model:
        texts = {}
        for path in files:
            try:
                texts[path] = path.read_text(encoding="utf-8",
                                             errors="replace")
            except OSError:
                continue
        for path, text in texts.items():
            self.scan_declarations(
                path, blank_preprocessor(blank_comments_and_strings(text)))
        for path, text in texts.items():
            self.scan_file(path, text)
        return self.model


# --- libclang frontend -------------------------------------------------------

class LibclangFrontend:
    """AST-grounded model builder over compile_commands.json via
    clang.cindex. Same IR as the textual frontend, with real extents and
    referenced-declaration call resolution. Selected by --frontend=libclang
    or by auto-detection; any failure degrades to the textual frontend so a
    missing/mismatched libclang never breaks the lint."""

    def __init__(self, root: Path, compdb: Path):
        self.root = root
        self.compdb = compdb

    def run(self, files: list[Path]) -> Model:
        from clang import cindex  # noqa: import gated by caller

        index = cindex.Index.create()
        db = json.loads(self.compdb.read_text(encoding="utf-8"))
        # Reuse the textual pass for declaration maps and comment-anchored
        # waivers — those are source-level by definition — then override
        # function structure from the AST.
        textual = TextualFrontend(self.root)
        model = textual.run(files)
        model.functions = []
        seen_defs: set[tuple[str, str, int]] = set()
        src = (self.root / "src").resolve()

        for entry in db:
            tu_path = Path(entry.get("directory", "."),
                           entry["file"]).resolve()
            try:
                tu_path.relative_to(src)
            except ValueError:
                continue
            args = [a for a in entry.get("command", "").split()[1:]
                    if a not in ("-c", "-o") and not a.endswith(".o")
                    and not a.endswith(".cpp")]
            tu = index.parse(str(tu_path), args=args)
            for cursor in tu.cursor.walk_preorder():
                if cursor.kind not in (
                        cindex.CursorKind.CXX_METHOD,
                        cindex.CursorKind.FUNCTION_DECL,
                        cindex.CursorKind.CONSTRUCTOR,
                        cindex.CursorKind.DESTRUCTOR) \
                        or not cursor.is_definition():
                    continue
                loc = cursor.location
                if loc.file is None:
                    continue
                file = Path(loc.file.name).resolve()
                try:
                    file.relative_to(src)
                except ValueError:
                    continue
                key = (self._qualified(cursor), str(file), loc.line)
                if key in seen_defs:
                    continue
                seen_defs.add(key)
                model.functions.append(
                    self._function(cursor, file, textual, model))
        return model

    def _qualified(self, cursor) -> str:
        parts, cur = [], cursor
        while cur is not None and cur.spelling:
            parts.append(cur.spelling)
            cur = cur.semantic_parent
        return "::".join(reversed(parts))

    def _function(self, cursor, file: Path, textual: TextualFrontend,
                  model: Model) -> FunctionInfo:
        from clang import cindex

        rel = _relpath(file, self.root)
        text = file.read_text(encoding="utf-8", errors="replace")
        comments = comment_lines(text)
        cls = ""
        parent = cursor.semantic_parent
        if parent is not None and parent.kind in (
                cindex.CursorKind.CLASS_DECL, cindex.CursorKind.STRUCT_DECL):
            cls = parent.spelling
        fn = FunctionInfo(qualified=self._qualified(cursor), cls=cls,
                          file=rel, line=cursor.location.line)
        fn.blocking_waiver = textual._waiver_near(
            "blocking", comments, cursor.location.line - 1, 3)
        held: list[str] = []
        for tok_annot in ANNOT_RE.finditer(" ".join(
                t.spelling for t in cursor.get_tokens())):
            for arg in tok_annot.group(2).split(","):
                lock = textual._lock_id(arg.strip(), cls)
                if lock:
                    held.append(lock)
        fn.entry_locks = tuple(held)
        self._walk_body(cursor, fn, textual, comments, list(held))
        return fn

    def _walk_body(self, cursor, fn: FunctionInfo, textual: TextualFrontend,
                   comments: dict[int, str], held: list[str]) -> None:
        from clang import cindex

        for child in cursor.get_children():
            line = child.location.line
            if child.kind == cindex.CursorKind.VAR_DECL and \
                    _last_name(child.type.spelling) in GUARD_TYPES:
                arg = " ".join(t.spelling for t in child.get_tokens())
                arg = arg[arg.find("(") + 1:arg.rfind(")")]
                lock = textual._lock_id(arg, fn.cls)
                if lock:
                    fn.acquisitions.append(Acquisition(
                        lock=lock, line=line, held=tuple(held),
                        in_loop_indexed=False,
                        waived=textual._waiver_near("lock-order", comments,
                                                    line, 2)))
                    held = held + [lock]
            elif child.kind == cindex.CursorKind.CALL_EXPR:
                ref = child.referenced
                callee = ref.spelling if ref is not None else child.spelling
                if callee:
                    qualifier = ""
                    if ref is not None and ref.semantic_parent is not None:
                        qualifier = ref.semantic_parent.spelling or ""
                    fn.calls.append(CallSite(
                        callee=callee, qualifier=qualifier, receiver="",
                        line=line, held=tuple(held),
                        blocking_waiver=textual._waiver_near(
                            "blocking", comments, line, 2)))
            self._walk_body(child, fn, textual, comments, list(held))


# --- analyses ----------------------------------------------------------------

def _relpath(path: Path, root: Path) -> Path:
    try:
        return path.relative_to(root)
    except ValueError:
        try:
            return path.resolve().relative_to(root.resolve())
        except ValueError:
            return path


def build_call_index(model: Model) -> dict[str, list[FunctionInfo]]:
    index: dict[str, list[FunctionInfo]] = defaultdict(list)
    for fn in model.functions:
        index[_last_name(fn.qualified)].append(fn)
    return index


def receiver_type(model: Model, caller: FunctionInfo,
                  receiver: str) -> str | None:
    """Type of a receiver expression tail: a local/param, a member of the
    caller's class, or (for `conn.socket.X()` chains, where only `socket`
    is captured) an unambiguous member of some local's type."""
    direct = (caller.local_types.get(receiver) or
              model.member_types.get((caller.cls, receiver)))
    if direct:
        return direct
    hits = {model.member_types[(local_cls, receiver)]
            for local_cls in set(caller.local_types.values())
            if (local_cls, receiver) in model.member_types}
    if len(hits) == 1:
        return next(iter(hits))
    return None


def resolve_call(model: Model, index: dict[str, list[FunctionInfo]],
                 caller: FunctionInfo, call: CallSite) -> list[FunctionInfo]:
    candidates = index.get(call.callee, [])
    if not candidates:
        return []
    if call.qualifier:
        tail = _last_name(call.qualifier)
        narrowed = [f for f in candidates
                    if f.cls == tail or f.qualified.endswith(
                        f"{call.qualifier}::{call.callee}")]
        if narrowed:
            return narrowed
    same_class = [f for f in candidates if f.cls == caller.cls]
    same_file = [f for f in candidates if f.file == caller.file]
    if call.receiver:
        recv_type = receiver_type(model, caller, call.receiver)
        if recv_type:
            narrowed = [f for f in candidates if f.cls == recv_type]
            if narrowed:
                return narrowed
            # receiver resolved to a type with no parsed methods of that
            # name (e.g. an STL container): not a repo call edge
            if any(f.cls for f in candidates) and recv_type not in {
                    f.cls for f in candidates}:
                return same_class
        else:
            # Unknown receiver type: matching every same-named method in
            # the repo would wire `shards_.size()` to FdCache::size. Stay
            # within the caller's class/file.
            return same_class or same_file
    if same_class:
        return same_class
    # File-local helpers (each .cpp's anonymous-namespace Metrics() etc.)
    # shadow same-named helpers in other files.
    return same_file or candidates


def check_lock_order(model: Model, docs_path: Path | None,
                     update_docs: bool) -> tuple[list[Violation], str]:
    """Builds the acquisition graph, fails on cycles, and returns the
    rendered lock-order block for the docs."""
    violations: list[Violation] = []
    # may_acquire: function -> locks it (transitively) acquires.
    index = build_call_index(model)
    direct: dict[str, set[str]] = {
        fn.qualified: {a.lock for a in fn.acquisitions if a.waived is None}
        for fn in model.functions}
    callees: dict[str, set[str]] = defaultdict(set)
    for fn in model.functions:
        for call in fn.calls:
            for target in resolve_call(model, index, fn, call):
                callees[fn.qualified].add(target.qualified)
    may_acquire = {name: set(locks) for name, locks in direct.items()}
    changed = True
    while changed:
        changed = False
        for name, targets in callees.items():
            bucket = may_acquire.setdefault(name, set())
            before = len(bucket)
            for target in targets:
                bucket |= may_acquire.get(target, set())
            changed = changed or len(bucket) != before

    # Edge set: held -> acquired, with one witness site per edge.
    edges: dict[tuple[str, str], tuple[Path, int, str]] = {}

    def add_edge(a: str, b: str, file: Path, line: int, why: str) -> None:
        if "?::" in a or "?::" in b:
            return  # unresolvable lock identity: do not invent edges
        edges.setdefault((a, b), (file, line, why))

    for fn in model.functions:
        for acq in fn.acquisitions:
            if acq.waived is not None:
                if acq.waived == "":
                    violations.append(Violation(
                        fn.file, acq.line, "lock-order-cycle",
                        "dpfs:lock-order-ok waiver has an empty reason"))
                continue
            for held in acq.held:
                if held != acq.lock:
                    add_edge(held, acq.lock, fn.file, acq.line,
                             f"{fn.qualified} acquires while holding")
            if acq.in_loop_indexed or acq.lock in acq.held:
                violations.append(Violation(
                    fn.file, acq.line, "lock-order-cycle",
                    f"{fn.qualified} acquires multiple {acq.lock} "
                    "instances (self-edge: same-capability nesting "
                    "deadlocks unless a total order is enforced) — "
                    "state the order in a dpfs:lock-order-ok(...) waiver"))
        for call in fn.calls:
            if not call.held:
                continue
            if call.blocking_waiver is not None:
                continue
            for target in resolve_call(model, index, fn, call):
                for lock in may_acquire.get(target.qualified, set()):
                    for held in call.held:
                        if held != lock:
                            add_edge(held, lock, fn.file, call.line,
                                     f"{fn.qualified} -> "
                                     f"{target.qualified}")

    # Cycle detection (iterative DFS; self-edges were handled above).
    graph: dict[str, set[str]] = defaultdict(set)
    for (a, b) in edges:
        graph[a].add(b)
    color: dict[str, int] = {}
    parent: dict[str, str] = {}

    def report_cycle(start: str, end: str) -> None:
        chain = [end]
        node = end
        while node != start and node in parent:
            node = parent[node]
            chain.append(node)
        chain.reverse()
        chain.append(start)
        witness = edges[(end, start)]
        violations.append(Violation(
            witness[0], witness[1], "lock-order-cycle",
            "lock-order cycle: " + " -> ".join(chain) +
            f" (edge from {witness[2]})"))

    for node in sorted(graph):
        if color.get(node):
            continue
        stack = [(node, iter(sorted(graph[node])))]
        color[node] = 1
        while stack:
            current, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, 0) == 0:
                    color[nxt] = 1
                    parent[nxt] = current
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    advanced = True
                    break
                if color.get(nxt) == 1:
                    report_cycle(nxt, current)
            if not advanced:
                color[current] = 2
                stack.pop()

    block = render_lock_order(model, edges)
    if docs_path is not None and docs_path.is_file():
        text = docs_path.read_text(encoding="utf-8")
        if LOCK_ORDER_BEGIN not in text or LOCK_ORDER_END not in text:
            violations.append(Violation(
                _relpath(docs_path, docs_path.parent.parent), 1,
                "lock-order-cycle",
                f"docs file lacks the {LOCK_ORDER_BEGIN} marker block for "
                "the generated global lock order"))
        else:
            current = text.split(LOCK_ORDER_BEGIN, 1)[1].split(
                LOCK_ORDER_END, 1)[0]
            if current.strip() != block.strip():
                if update_docs:
                    updated = (text.split(LOCK_ORDER_BEGIN, 1)[0] +
                               LOCK_ORDER_BEGIN + "\n" + block + "\n" +
                               LOCK_ORDER_END +
                               text.split(LOCK_ORDER_END, 1)[1])
                    docs_path.write_text(updated, encoding="utf-8")
                    print(f"updated lock-order block in {docs_path}")
                else:
                    violations.append(Violation(
                        _relpath(docs_path, docs_path.parent.parent), 1,
                        "lock-order-cycle",
                        "generated lock-order block is stale — run "
                        "tools/dpfs_deep_lint.py --update-docs"))
    return violations, block


def render_lock_order(model: Model,
                      edges: dict[tuple[str, str], tuple[Path, int, str]]
                      ) -> str:
    """Topologically ordered lock list + the edges that pin it, plus the
    sanctioned same-capability nestings (waived self-edges)."""
    nodes = sorted({n for edge in edges for n in edge})
    indeg = {n: 0 for n in nodes}
    graph: dict[str, set[str]] = defaultdict(set)
    for (a, b) in edges:
        if b not in graph[a]:
            graph[a].add(b)
            indeg[b] += 1
    # Kahn's algorithm with deterministic (level, name) ordering; on a
    # cycle the remainder is listed unordered (the lint already failed).
    order: list[str] = []
    ready = sorted(n for n in nodes if indeg[n] == 0)
    while ready:
        node = ready.pop(0)
        order.append(node)
        for nxt in sorted(graph[node]):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
        ready.sort()
    leftover = [n for n in nodes if n not in order]
    lines = ["Acquire order (earlier locks may be held while taking later "
             "ones; the reverse is a lint failure):", ""]
    for pos, node in enumerate(order + leftover, start=1):
        lines.append(f"{pos}. `{node}`")
    lines.append("")
    lines.append("Pinned by these acquisition edges:")
    lines.append("")
    for (a, b), (file, line, why) in sorted(edges.items()):
        lines.append(f"* `{a}` -> `{b}` — {file}:{line} ({why})")
    waived = sorted(
        {(fn.file.as_posix(), acq.line, acq.lock, acq.waived)
         for fn in model.functions for acq in fn.acquisitions
         if acq.waived})
    if waived:
        lines.append("")
        lines.append("Sanctioned same-capability nestings "
                     "(`dpfs:lock-order-ok` waivers):")
        lines.append("")
        for file, line, lock, reason in waived:
            lines.append(f"* `{lock}` at {file}:{line} — {reason}")
    return "\n".join(lines)


def _blocking_class_match(target_cls: str, required: str | None) -> bool:
    if required is None:
        return True
    return target_cls in BLOCKING_CLASS_ALIASES.get(required, {required})


def check_reactor_blocking(model: Model, roots: tuple[str, ...]
                           ) -> list[Violation]:
    violations: list[Violation] = []
    index = build_call_index(model)
    by_suffix: dict[str, list[FunctionInfo]] = defaultdict(list)
    for fn in model.functions:
        by_suffix[fn.qualified].append(fn)

    root_fns: list[FunctionInfo] = []
    for root in roots:
        matches = [fn for fn in model.functions
                   if fn.qualified == root or
                   fn.qualified.endswith("::" + root)]
        if not matches:
            violations.append(Violation(
                Path("tools/dpfs_deep_lint.py"), 1, "reactor-blocking",
                f"configured reactor root '{root}' resolves to no parsed "
                "function — renamed? update REACTOR_ROOTS"))
        root_fns.extend(matches)

    # BFS over the call graph; remember one witness path per function.
    # Keyed by object identity, not qualified name: distinct definitions
    # can share a name (fixtures, per-file anon-namespace helpers) and each
    # body must be walked.
    paths: dict[int, list[str]] = {}
    queue: list[FunctionInfo] = []
    for fn in root_fns:
        if id(fn) not in paths:
            paths[id(fn)] = [fn.qualified]
            queue.append(fn)
    while queue:
        fn = queue.pop(0)
        if fn.blocking_waiver is not None:
            if fn.blocking_waiver == "":
                violations.append(Violation(
                    fn.file, fn.line, "reactor-blocking",
                    "dpfs:blocking-ok waiver has an empty reason"))
            continue  # sanctioned blocking boundary: do not traverse
        for call in sorted(fn.calls, key=lambda c: c.line):
            blocking_cls = BLOCKING_CALLEES.get(call.callee, "absent")
            if blocking_cls != "absent":
                # Candidate blocking primitive: check receiver class.
                recv_type = receiver_type(model, fn, call.receiver) \
                    if call.receiver else None
                qual_tail = _last_name(call.qualifier) if call.qualifier \
                    else None
                cls_hint = recv_type or qual_tail
                targets = index.get(call.callee, [])
                if cls_hint is None and blocking_cls is not None and targets:
                    hints = {t.cls for t in targets if t.cls}
                    if len(hints) == 1:
                        cls_hint = next(iter(hints))
                matched = blocking_cls is None or (
                    cls_hint is not None and
                    _blocking_class_match(cls_hint, blocking_cls))
                if matched and call.blocking_waiver is None:
                    chain = " -> ".join(paths[id(fn)])
                    target = (f"{cls_hint}::{call.callee}" if cls_hint
                              else call.callee)
                    violations.append(Violation(
                        fn.file, call.line, "reactor-blocking",
                        f"blocking call {target}() reachable from the "
                        f"reactor: {chain} -> {target} — the event loop "
                        "stalls every connection while this runs; fix it "
                        "or waive with dpfs:blocking-ok(reason)"))
                    continue
                if matched:
                    continue  # waived at the call site
            if call.blocking_waiver is not None:
                continue  # waived edge: do not traverse
            for target in resolve_call(model, index, fn, call):
                if id(target) in paths:
                    continue
                paths[id(target)] = (paths[id(fn)] +
                                     [target.qualified])
                queue.append(target)
    return violations


def check_error_paths(model: Model) -> list[Violation]:
    violations: list[Violation] = []
    for fn in model.functions:
        for discard in fn.discards:
            if discard.callee not in model.status_returning:
                continue
            if discard.waiver is None:
                violations.append(Violation(
                    fn.file, discard.line, "unchecked-status",
                    f"(void)-discarded {discard.callee}() returns "
                    "Status/Result — state why dropping the error is "
                    "sound with dpfs:unchecked(reason)"))
            elif discard.waiver == "":
                violations.append(Violation(
                    fn.file, discard.line, "unchecked-status",
                    "dpfs:unchecked waiver has an empty reason"))
    for file, line, reason in model.no_tsa_sites:
        if reason is None:
            violations.append(Violation(
                file, line, "no-tsa-justification",
                "DPFS_NO_THREAD_SAFETY_ANALYSIS without a nearby "
                "dpfs:no-tsa(reason) stating why the unchecked locking "
                "is sound"))
    return violations


# --- driver ------------------------------------------------------------------

def build_model(root: Path, compdb: Path | None, frontend: str
                ) -> tuple[Model, str]:
    files = iter_sources(root, compdb)
    if frontend in ("auto", "libclang"):
        try:
            import clang.cindex  # noqa: F401
            if compdb is None or not compdb.is_file():
                raise RuntimeError("no compile_commands.json")
            model = LibclangFrontend(root, compdb).run(files)
            return model, "libclang"
        except Exception as exc:  # noqa: BLE001 — degrade, never break
            if frontend == "libclang":
                print(f"dpfs_deep_lint: libclang frontend failed ({exc}); "
                      "falling back to the textual frontend",
                      file=sys.stderr)
    return TextualFrontend(root).run(files), "textual"


def run_lint(root: Path, compdb: Path | None, frontend: str,
             roots: tuple[str, ...], update_docs: bool,
             docs: bool = True) -> tuple[list[Violation], str]:
    model, used = build_model(root, compdb, frontend)
    docs_path = root / "docs" / "STATIC_ANALYSIS.md" if docs else None
    if docs_path is not None and not docs_path.is_file():
        docs_path = None
    violations, block = check_lock_order(model, docs_path, update_docs)
    violations += check_reactor_blocking(model, roots)
    violations += check_error_paths(model)
    violations.sort(key=lambda v: (str(v.path), v.line, v.check))
    return violations, used


# --- self-test ---------------------------------------------------------------

ALL_CHECKS = frozenset({
    "lock-order-cycle", "reactor-blocking", "unchecked-status",
    "no-tsa-justification",
})

# check -> fixture file expected to trigger it (inside deep_lint_fixtures/).
EXPECTED_SELF_TEST = {
    "lock-order-cycle": "src/core/lock_cycle.cpp",
    "reactor-blocking": "src/server/reactor_block.cpp",
    "unchecked-status": "src/metadb/bad_discard.cpp",
    "no-tsa-justification": "src/metadb/bad_discard.cpp",
}
CLEAN_FIXTURE = "src/core/clean_waived.cpp"


def run_self_test(fixtures: Path) -> int:
    # The textual frontend is the reference implementation the fixtures
    # pin (they are header-free single files with no compile commands);
    # the libclang frontend is exercised against the real tree instead.
    model = TextualFrontend(fixtures).run(iter_sources(fixtures, None))
    violations, _ = check_lock_order(model, None, False)
    violations += check_reactor_blocking(model, SELF_TEST_ROOTS)
    violations += check_error_paths(model)

    found = {(v.check, v.path.as_posix()) for v in violations}
    failures: list[str] = []
    for check in sorted(ALL_CHECKS - set(EXPECTED_SELF_TEST)):
        failures.append(f"self-test: check '{check}' has no seeded fixture")
    for v in violations:
        if v.check not in ALL_CHECKS:
            failures.append(
                f"self-test: check '{v.check}' missing from ALL_CHECKS")
    for check, path in EXPECTED_SELF_TEST.items():
        if (check, path) not in found:
            failures.append(
                f"self-test: check '{check}' did not fire on {path}")
    for v in violations:
        if v.path.as_posix() == CLEAN_FIXTURE:
            failures.append(
                f"self-test: false positive on clean fixture: {v}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        for v in violations:
            print(f"self-test saw: {v}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(ALL_CHECKS)} violation classes caught, "
          "clean waived fixture clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--compdb", type=Path, default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--frontend", choices=("auto", "libclang",
                                               "textual"), default="auto")
    parser.add_argument("--update-docs", action="store_true",
                        help="rewrite the generated lock-order block in "
                             "docs/STATIC_ANALYSIS.md")
    parser.add_argument("--self-test", action="store_true")
    parser.add_argument("--dump-ir", action="store_true",
                        help="debug: print every parsed function with its "
                             "acquisitions and calls")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(
            Path(__file__).resolve().parent / FIXTURE_DIR_NAME)

    compdb = args.compdb or (args.root / "build" / "compile_commands.json")
    if args.dump_ir:
        model, used = build_model(args.root, compdb, args.frontend)
        print(f"frontend: {used}")
        for fn in model.functions:
            print(f"{fn.file}:{fn.line}: {fn.qualified}"
                  f" entry={list(fn.entry_locks)}")
            for acq in fn.acquisitions:
                print(f"  acquire {acq.lock} @{acq.line} "
                      f"held={list(acq.held)} loop={acq.in_loop_indexed} "
                      f"waived={acq.waived!r}")
            for call in fn.calls:
                held = f" held={list(call.held)}" if call.held else ""
                print(f"  call {call.qualifier + '::' if call.qualifier else ''}"
                      f"{call.receiver + '.' if call.receiver else ''}"
                      f"{call.callee} @{call.line}{held}")
        return 0

    violations, used = run_lint(args.root, compdb, args.frontend,
                                REACTOR_ROOTS, args.update_docs)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"dpfs_deep_lint[{used}]: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"dpfs_deep_lint[{used}]: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
