// Fixture: MessageType enum for the opcode cross-check. kPing and
// kListRead have matching rows in the fixture wire doc (must stay clean —
// kListRead also exercises the CamelCase -> snake_case conversion);
// kOrphan has no row and must fire opcode-undocumented. The fixture doc
// additionally documents opcode 9, which matches no enumerator here and
// must fire opcode-ghost.
#pragma once

namespace dpfs::net {

enum class MessageType : unsigned char {
  kPing = 1,
  kListRead = 2,
  kOrphan = 3,
};

}  // namespace dpfs::net
