// Exists so the clean doc fixture's path references resolve.
#pragma once
