// Fixture: failpoint sites and metric instruments for the catalog
// cross-checks. One of each pair is cataloged in the fixture docs (must
// stay clean) and one is not (fires *-undocumented).

#include "common/failpoint.h"
#include "common/metrics.h"

namespace dpfs::common {

void Touch() {
  if (failpoint::Check("fixture.documented")) {
  }
  if (failpoint::Check("fixture.undocumented")) {
  }
  metrics::GetCounter("fix.documented").Increment();
  metrics::GetCounter("fix.undocumented").Increment();
}

}  // namespace dpfs::common
