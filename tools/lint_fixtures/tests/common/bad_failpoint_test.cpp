// Seeded violation: arms a failpoint, never disarms (dpfs_lint --self-test).
#include "common/failpoint.h"

void ArmOnly() {
  dpfs::failpoint::Spec spec;
  spec.action = dpfs::failpoint::Action::kReturnError;
  dpfs::failpoint::Arm("net.send_all", spec);
  // missing: failpoint::DisarmAll() in teardown
}
