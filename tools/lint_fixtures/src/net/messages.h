// Seeded fixture for the opcode-names rule: kOrphan has no case in the
// MessageTypeName switch in the sibling messages.cpp.
#include <cstdint>

namespace dpfs::net {

enum class MessageType : std::uint8_t {
  kPing = 1,
  kOrphan = 2,
};

}  // namespace dpfs::net
