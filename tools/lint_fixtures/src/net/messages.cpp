// Seeded fixture for the opcode-names rule: the switch is missing a case
// for MessageType::kOrphan, which the header declares.
#include "net/messages.h"

namespace dpfs::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kPing: return "ping";
  }
  return "unknown";
}

}  // namespace dpfs::net
