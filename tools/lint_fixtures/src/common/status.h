// Seeded violation: Status/Result without [[nodiscard]] (dpfs_lint
// --self-test). The real src/common/status.h carries the attribute on both.
#pragma once

class Status {};

template <typename T>
class Result {};
