// Seeded violation: relative include (dpfs_lint --self-test).
#include "../common/status.h"
