// Clean fixture: everything here is allowed; dpfs_lint --self-test fails if
// any rule fires on this file (false-positive guard).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "layout/plan.h"

// The words "throw" and "mutex" in a comment must not trip the linter.
inline int PureMath(int x) { return x * 2; }
