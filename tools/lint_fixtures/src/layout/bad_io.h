// Seeded violation: layout must stay pure math (dpfs_lint --self-test).
#pragma once

#include <fstream>          // layout-purity: I/O header
#include "net/socket.h"     // layout-purity: other-subsystem dependency
