// Seeded violation: exception in a public API header (dpfs_lint --self-test).
#pragma once

#include <stdexcept>

inline void Fail() { throw std::runtime_error("no exceptions in headers"); }
