// Seeded violation: raw std::mutex in production code (dpfs_lint --self-test).
#include <mutex>
#include <shared_mutex>

static std::mutex g_raw_mutex;
static std::shared_mutex g_raw_shared_mutex;

void Touch() { std::lock_guard<std::mutex> lock(g_raw_mutex); }

void Read() { std::shared_lock<std::shared_mutex> lock(g_raw_shared_mutex); }
