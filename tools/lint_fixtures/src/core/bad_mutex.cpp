// Seeded violation: raw std::mutex in production code (dpfs_lint --self-test).
#include <mutex>

static std::mutex g_raw_mutex;

void Touch() { std::lock_guard<std::mutex> lock(g_raw_mutex); }
