// Seeded violation for the assign-or-return-case rule: the first case uses
// DPFS_ASSIGN_OR_RETURN without bracing its body (the macro declares a
// variable, so the jump to `case 1` crosses its initialization). The braced
// second case is the correct form and must not fire.

#include "common/status.h"

namespace dpfs::metad {

Status Demo(int op) {
  switch (op) {
    case 0:
      DPFS_ASSIGN_OR_RETURN(auto rows, LoadRows());
      return Consume(rows);
    case 1: {
      DPFS_ASSIGN_OR_RETURN(auto rows, LoadRows());
      return Consume(rows);
    }
    default:
      return Status::OK();
  }
}

}  // namespace dpfs::metad
