// Clean counterpart: every shape the seeded fixtures make fire, but with
// valid waivers attached. The self-test requires this file to produce zero
// findings — a waiver-parsing regression shows up here first.
// Fixture only — never compiled; parsed by the textual frontend.

namespace dpfs::core {

class Ledger {
 public:
  Status Flush();

  void Drop() {
    // dpfs:unchecked(best-effort flush on shutdown; the journal replays on
    // the next open so a lost write is recovered, not corrupted)
    (void)Flush();
  }

  // dpfs:no-tsa(runtime-indexed mutex vector below: the analysis cannot
  // name shards_[i] capabilities; the ascending-index loop is the manual
  // discipline that replaces it)
  void LockAll() DPFS_NO_THREAD_SAFETY_ANALYSIS;

 private:
  std::vector<std::unique_ptr<Mutex>> shards_;
};

}  // namespace dpfs::core

namespace dpfs::server {

class EventLoop {
 public:
  void Run() {
    Settle();
  }

 private:
  void Settle() {
    // dpfs:blocking-ok(fixture: a sanctioned startup backoff before the
    // loop accepts its first connection)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

}  // namespace dpfs::server
