// Seeded violation: an AB/BA lock-order cycle across two functions of the
// same class. The deep lint must report lock-order-cycle on this file.
// Fixture only — never compiled; parsed by the textual frontend.

namespace dpfs::core {

struct Alpha {
  Mutex mu_;
};

struct Beta {
  Mutex mu_;
};

class Pair {
 public:
  void ForwardOrder() {
    MutexLock a(alpha_.mu_);
    MutexLock b(beta_.mu_);  // pins Alpha::mu_ -> Beta::mu_
  }

  void ReverseOrder() {
    MutexLock b(beta_.mu_);
    MutexLock a(alpha_.mu_);  // pins Beta::mu_ -> Alpha::mu_: the cycle
  }

 private:
  Alpha alpha_;
  Beta beta_;
};

}  // namespace dpfs::core
