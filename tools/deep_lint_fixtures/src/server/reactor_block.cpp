// Seeded violation: a blocking sleep_for reachable from the reactor root
// server::EventLoop::Run through a call chain, with no dpfs:blocking-ok
// waiver. The deep lint must report reactor-blocking on this file.
// Fixture only — never compiled; parsed by the textual frontend.

namespace dpfs::server {

class EventLoop {
 public:
  void Run() {
    while (Tick()) {
      Drain();
    }
  }

 private:
  bool Tick() { return false; }

  void Drain() {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
};

}  // namespace dpfs::server
