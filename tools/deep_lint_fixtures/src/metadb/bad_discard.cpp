// Seeded violations: a (void)-discarded Status with no dpfs:unchecked
// waiver, and a DPFS_NO_THREAD_SAFETY_ANALYSIS with no dpfs:no-tsa waiver.
// The deep lint must report unchecked-status and no-tsa-justification here.
// Fixture only — never compiled; parsed by the textual frontend.

namespace dpfs::metadb {

class Journal {
 public:
  Status Flush();

  void Drop() {
    (void)Flush();
  }

  void Sneak() DPFS_NO_THREAD_SAFETY_ANALYSIS;
};

}  // namespace dpfs::metadb
