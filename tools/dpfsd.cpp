// dpfsd — the standalone DPFS I/O server daemon (the paper's "DPFS Server
// Program" that runs on each storage workstation).
//
//   dpfsd --root /var/dpfs [--port 7070] [--name host.example]
//         [--metadb /shared/dpfs-meta] [--metadb-shards 1]
//         [--metad host:port]
//         [--capacity 536870912]
//         [--performance 1] [--engine thread|event]
//         [--metrics-dump-ms 0] [--metrics-dump-path FILE]
//         [--metrics-port 0]
//
// With --metadb, the server registers itself in the DPFS_SERVER table so
// clients can find it (re-registering replaces a stale row). With --metad,
// registration goes over the wire to a dpfs-metad process instead — the
// metad owns the database flock, so opening the directory here would
// block. Runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "client/metadata.h"
#include "client/remote_metadata.h"
#include "common/log.h"
#include "common/options.h"
#include "server/io_server.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

dpfs::Status RegisterSelf(const std::string& metadb_dir,
                          std::size_t metadb_shards,
                          const dpfs::client::ServerInfo& info) {
  using namespace dpfs;
  DPFS_ASSIGN_OR_RETURN(std::unique_ptr<metadb::ShardedDatabase> db,
                        metadb::ShardedDatabase::Open(metadb_dir,
                                                      metadb_shards));
  std::shared_ptr<metadb::ShardedDatabase> shared = std::move(db);
  DPFS_ASSIGN_OR_RETURN(auto metadata,
                        client::MetadataManager::Attach(shared));
  // Replace any stale registration for this name (e.g. after a restart on a
  // new ephemeral port).
  (void)metadata->UnregisterServer(info.name);
  return metadata->RegisterServer(info);
}

dpfs::Status RegisterSelfRemote(const std::string& metad_endpoint,
                                const dpfs::client::ServerInfo& info) {
  using namespace dpfs;
  DPFS_ASSIGN_OR_RETURN(const net::Endpoint endpoint,
                        net::Endpoint::Parse(metad_endpoint));
  DPFS_ASSIGN_OR_RETURN(auto metadata,
                        client::RemoteMetadataManager::Connect(endpoint));
  (void)metadata->UnregisterServer(info.name);
  return metadata->RegisterServer(info);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dpfs;
  // Liveness lines must reach log files promptly (supervisors and the
  // deployment test tail them), not sit in a block buffer until exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  SetLogLevel(LogLevel::kInfo);
  const Options opts = Options::Parse(argc, argv).value();
  if (!opts.Has("root")) {
    std::fprintf(stderr,
                 "usage: dpfsd --root DIR [--port N] [--name NAME]\n"
                 "             [--metadb DIR] [--metadb-shards N] "
                 "[--metad HOST:PORT] "
                 "[--capacity BYTES] [--performance N] [--max-sessions N]\n"
                 "             [--engine thread|event] [--metrics-dump-ms N] "
                 "[--metrics-dump-path FILE] [--metrics-port N]\n");
    return 2;
  }
  if (opts.Has("metadb") && opts.Has("metad")) {
    std::fprintf(stderr,
                 "dpfsd: --metadb and --metad are mutually exclusive (the "
                 "metad owns the database)\n");
    return 2;
  }

  server::ServerOptions server_options;
  server_options.root_dir = opts.GetString("root", "");
  server_options.port = static_cast<std::uint16_t>(opts.GetInt("port", 0));
  server_options.max_sessions =
      static_cast<std::size_t>(opts.GetInt("max-sessions", 0));
  const std::string engine = opts.GetString("engine", "thread");
  if (engine == "event") {
    server_options.engine = server::ServerEngine::kEventLoop;
  } else if (engine != "thread") {
    std::fprintf(stderr, "dpfsd: --engine must be 'thread' or 'event'\n");
    return 2;
  }
  server_options.metrics_dump_interval =
      std::chrono::milliseconds(opts.GetInt("metrics-dump-ms", 0));
  server_options.metrics_dump_path = opts.GetString("metrics-dump-path", "");
  server_options.metrics_port =
      static_cast<std::uint16_t>(opts.GetInt("metrics-port", 0));

  Result<std::unique_ptr<server::IoServer>> started =
      server::IoServer::Start(std::move(server_options));
  if (!started.ok()) {
    std::fprintf(stderr, "dpfsd: %s\n", started.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<server::IoServer>& io_server = started.value();
  std::printf("dpfsd: serving %s on %s\n",
              opts.GetString("root", "").c_str(),
              io_server->endpoint().ToString().c_str());
  if (io_server->metrics_http_port() != 0) {
    std::printf("dpfsd: metrics at http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(io_server->metrics_http_port()));
  }

  if (opts.Has("metadb") || opts.Has("metad")) {
    client::ServerInfo info;
    info.name = opts.GetString(
        "name", "dpfsd-" + std::to_string(io_server->endpoint().port));
    info.endpoint = io_server->endpoint();
    info.capacity_bytes =
        static_cast<std::uint64_t>(opts.GetInt("capacity", 1ll << 30));
    info.performance =
        static_cast<std::uint32_t>(opts.GetInt("performance", 1));
    const Status registered =
        opts.Has("metad")
            ? RegisterSelfRemote(opts.GetString("metad", ""), info)
            : RegisterSelf(
                  opts.GetString("metadb", ""),
                  static_cast<std::size_t>(opts.GetInt("metadb-shards", 1)),
                  info);
    if (!registered.ok()) {
      std::fprintf(stderr, "dpfsd: registration failed: %s\n",
                   registered.ToString().c_str());
      return 1;
    }
    std::printf("dpfsd: registered as '%s' in %s\n", info.name.c_str(),
                opts.Has("metad") ? opts.GetString("metad", "").c_str()
                                  : opts.GetString("metadb", "").c_str());
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("dpfsd: shutting down (%llu requests served, %s read, %s "
              "written)\n",
              static_cast<unsigned long long>(
                  io_server->stats().requests.load()),
              std::to_string(io_server->stats().bytes_read.load()).c_str(),
              std::to_string(io_server->stats().bytes_written.load()).c_str());
  io_server->Stop();
  return 0;
}
