// dpfs — the DPFS user-interface CLI (§7) against an existing deployment.
//
//   dpfs --metadb /shared/dpfs-meta                 # interactive shell
//   dpfs --metadb /shared/dpfs-meta --c "ls -l /"    # one command
//   echo "import a.dat /a.dat" | dpfs --metadb DIR  # scripted
//   dpfs --metad host:7060 --c "ls -l /"            # via dpfs-metad
//
// The metadata directory is the one the dpfsd daemons registered into; the
// CLI discovers the I/O servers from the DPFS_SERVER table.
// --metadb-shards must match the deployment's shard count (1 = the default
// unsharded layout; a mismatch fails fast instead of guessing).
// With --metad the CLI never opens the database: every namespace operation
// goes over the wire to the dpfs-metad at HOST:PORT, so any number of
// shells can run concurrently against one namespace.
#include <cstdio>
#include <iostream>
#include <string>

#include "client/file_system.h"
#include "common/options.h"
#include "shell/shell.h"

int main(int argc, char** argv) {
  using namespace dpfs;
  const Options opts = Options::Parse(argc, argv).value();
  if (!opts.Has("metadb") && !opts.Has("metad")) {
    std::fprintf(stderr,
                 "usage: dpfs --metadb DIR [--metadb-shards N] [--c COMMAND]\n"
                 "       dpfs --metad HOST:PORT [--c COMMAND]\n");
    return 2;
  }
  if (opts.Has("metadb") && opts.Has("metad")) {
    std::fprintf(stderr,
                 "dpfs: --metadb and --metad are mutually exclusive (the "
                 "metad owns the database)\n");
    return 2;
  }

  Result<std::shared_ptr<client::FileSystem>> fs =
      InternalError("unreachable");
  if (opts.Has("metad")) {
    Result<net::Endpoint> endpoint =
        net::Endpoint::Parse(opts.GetString("metad", ""));
    if (!endpoint.ok()) {
      std::fprintf(stderr, "dpfs: %s\n",
                   endpoint.status().ToString().c_str());
      return 1;
    }
    fs = client::FileSystem::ConnectRemote(endpoint.value());
  } else {
    Result<std::unique_ptr<metadb::ShardedDatabase>> db =
        metadb::ShardedDatabase::Open(
            opts.GetString("metadb", ""),
            static_cast<std::size_t>(opts.GetInt("metadb-shards", 1)));
    if (!db.ok()) {
      std::fprintf(stderr, "dpfs: %s\n", db.status().ToString().c_str());
      return 1;
    }
    std::shared_ptr<metadb::ShardedDatabase> shared = std::move(db).value();
    fs = client::FileSystem::Connect(shared);
  }
  if (!fs.ok()) {
    std::fprintf(stderr, "dpfs: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  shell::Shell shell(fs.value());

  if (opts.Has("c")) {
    const Status status = shell.Execute(opts.GetString("c", ""), std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "dpfs: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  const bool interactive = isatty(fileno(stdin)) != 0;
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("dpfs:%s> ", shell.cwd().c_str());
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (line == "exit" || line == "quit") break;
    const Status status = shell.Execute(line, std::cout);
    if (!status.ok()) std::printf("error: %s\n", status.ToString().c_str());
  }
  return 0;
}
