#!/usr/bin/env python3
"""doc_lint: the documentation-consistency linter.

Docs rot silently: a file gets renamed, a doc keeps pointing at the old
name, and the next reader chases a ghost. This linter makes doc drift a
test failure (ctest `doc_lint`), checking every tracked markdown file:

  broken-link   every relative markdown link target ([text](path) where
                path is not http(s)/mailto/#anchor) must resolve on disk,
                relative to the linking document's directory.
  stale-path    every repo path a doc mentions (src/..., tests/...,
                bench/..., tools/..., examples/..., docs/...) must exist —
                either exactly, or as a directory, or with a standard
                suffix appended (e.g. `src/common/metrics` + .h/.cpp covers
                the "metrics.{h,cpp}" brace shorthand). Mentions containing
                glob characters are skipped.

Two catalogs are additionally cross-checked against the source tree, in
both directions, so the doc tables stay the authoritative inventory:

  failpoint-undocumented / failpoint-ghost
                every site string passed to failpoint::Check("...") in src/
                must have a row in the docs/FAULT_INJECTION.md site-catalog
                table, and every cataloged site must still be checked
                somewhere in src/.
  metric-undocumented / metric-ghost
                every instrument name passed to GetCounter/GetGauge/
                GetHistogram("...") in src/ must have a row in a
                docs/OBSERVABILITY.md catalog table, and every cataloged
                name must still be registered somewhere in src/. Catalog
                rows may abbreviate siblings (`x.hits` / `.misses`) and use
                `<op>` placeholders for dynamic suffixes (matching source
                names that end with a dot).
  opcode-undocumented / opcode-ghost
                every enumerator of `enum class MessageType` in
                src/net/messages.h must have a row (matching number AND
                snake_case name) in docs/WIRE_PROTOCOL.md's request table,
                and every numbered table row must match a live enumerator —
                so the wire doc stays the authoritative opcode inventory.

Scanned documents: README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
CLAUDE.md, CHANGES.md, and docs/*.md.

Usage:
  tools/doc_lint.py [--root DIR]   lint the repo (default: repo root)
  tools/doc_lint.py --self-test    run against the seeded-violation
                                   fixtures in tools/doc_lint_fixtures and
                                   fail unless every expected violation
                                   fires

Exit status: 0 clean, 1 violations (printed one per line as
"path:line: rule: message").
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

TOP_LEVEL_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                  "CLAUDE.md", "CHANGES.md")
FIXTURE_DIR_NAME = "doc_lint_fixtures"

# [text](target) — target captured up to the closing paren. Images
# (![alt](target)) match too, which is what we want.
MARKDOWN_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# A repo path: one of the source trees, then at least one path character.
# The lookbehind keeps `build/bench/...` from matching its `bench/` tail.
REPO_PATH_RE = re.compile(
    r"(?<![\w/\-.])(?:src|tests|bench|tools|examples|docs)/[\w./\-]+"
)

# Suffixes tried when a bare mention doesn't exist as written; covers the
# `metrics.{h,cpp}` brace shorthand and extensionless tool references.
ACCEPTED_SUFFIXES = ("", ".h", ".cpp", ".py", ".sh", ".md")


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def iter_docs(root: Path):
    for name in TOP_LEVEL_DOCS:
        path = root / name
        if path.is_file():
            yield path
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def path_exists(root: Path, mention: str) -> bool:
    mention = mention.rstrip("/").rstrip(".,:;")
    if not mention:
        return True
    for suffix in ACCEPTED_SUFFIXES:
        if (root / (mention + suffix)).exists():
            return True
    return False


def lint_doc(path: Path, root: Path) -> list[Violation]:
    rel = path.relative_to(root)
    text = path.read_text(encoding="utf-8", errors="replace")
    out: list[Violation] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = target.split("#", 1)[0]  # drop the anchor
            if not resolved:
                continue
            if not (path.parent / resolved).exists():
                out.append(Violation(
                    rel, lineno, "broken-link",
                    f"link target '{target}' does not resolve (relative to "
                    f"{rel.parent.as_posix()}/)"))

        for match in REPO_PATH_RE.finditer(line):
            mention = match.group(0)
            tail = line[match.end():match.end() + 1]
            if tail in ("*", "?", "{", "["):
                continue  # glob / brace shorthand — not a literal path
            if any(ch in mention for ch in "*?[]{}"):
                continue
            if not path_exists(root, mention):
                out.append(Violation(
                    rel, lineno, "stale-path",
                    f"mentions '{mention}', which does not exist in the "
                    "repo (renamed or deleted?)"))

    return out


# --- catalog cross-checks (failpoint sites, metric instruments) -------------

_CODE_STRIP_RE = re.compile(
    r'//[^\n]*|/\*.*?\*/', re.DOTALL)  # strings must survive: they ARE the data

# Sites reach failpoint::Check either directly or through the
# DPFS_FAILPOINT_RETURN convenience macro (common/failpoint.h).
FAILPOINT_CALL_RE = re.compile(
    r'(?:failpoint::Check|DPFS_FAILPOINT\w*)\(\s*"([^"]+)"')
METRIC_CALL_RE = re.compile(r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]+)"')

# A catalog row's first cell: `| `name` | ...` where name is dotted
# lowercase (which is what keeps the action/status tables out).
CATALOG_ROW_RE = re.compile(r"^\|([^|]*)\|")
BACKTICK_RE = re.compile(r"`([^`]+)`")
DOTTED_NAME_RE = re.compile(r"^[a-z_]+(?:\.[a-z_<>]+)+\.?$")


def scan_src_calls(root: Path, pattern: re.Pattern[str]
                   ) -> dict[str, tuple[Path, int]]:
    """name -> (file, line) of one call site per literal under src/."""
    sites: dict[str, tuple[Path, int]] = {}
    base = root / "src"
    if not base.is_dir():
        return sites
    for path in sorted(base.rglob("*")):
        if path.suffix not in {".h", ".hpp", ".cpp", ".cc"}:
            continue
        text = path.read_text(encoding="utf-8", errors="replace")
        code = _CODE_STRIP_RE.sub(
            lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
        for m in pattern.finditer(code):
            name = m.group(1)
            lineno = code.count("\n", 0, m.start()) + 1
            sites.setdefault(name, (path.relative_to(root), lineno))
    return sites


def doc_catalog_names(path: Path) -> dict[str, int]:
    """Dotted names from catalog-table first cells -> line number.

    Sibling shorthand (`x.hits` / `.misses`) expands against the previous
    full name in the same cell; a trailing `<op>`-style placeholder is
    normalized to the dynamic-suffix form (trailing dot).
    """
    names: dict[str, int] = {}
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8", errors="replace").splitlines(),
            start=1):
        row = CATALOG_ROW_RE.match(line)
        if not row:
            continue
        prev: str | None = None
        for token in BACKTICK_RE.findall(row.group(1)):
            if token.startswith(".") and prev is not None:
                token = prev.rsplit(".", 1)[0] + token
            if not DOTTED_NAME_RE.match(token):
                continue
            prev = token
            name = re.sub(r"<[^>]+>$", "", token)
            names.setdefault(name, lineno)
    return names


def cross_check(src: dict[str, tuple[Path, int]], doc: dict[str, int],
                doc_rel: Path, kind: str, where: str) -> list[Violation]:
    out: list[Violation] = []
    for name in sorted(src):
        if name in doc:
            continue
        path, lineno = src[name]
        out.append(Violation(
            path, lineno, f"{kind}-undocumented",
            f"{kind} '{name}' is not in the {doc_rel.as_posix()} catalog "
            f"table — every {kind} {where} must be cataloged"))
    for name in sorted(doc):
        if name in src:
            continue
        out.append(Violation(
            doc_rel, doc[name], f"{kind}-ghost",
            f"catalog row for {kind} '{name}' matches nothing in src/ "
            "(renamed or deleted? update the table)"))
    return out


# --- opcode cross-check (MessageType enum vs the wire-protocol table) -------

MESSAGE_TYPE_ENUM_RE = re.compile(
    r"enum\s+class\s+MessageType[^{]*\{(.*?)\};", re.DOTALL)
ENUM_ENTRY_RE = re.compile(r"\bk([A-Za-z0-9]+)\s*=\s*(\d+)")
# A request-table row whose first cell is the opcode number:
# `| 31 | list_read | body... |`
OPCODE_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*([a-z0-9_]+)\s*\|")


def camel_to_snake(name: str) -> str:
    return re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()


def enum_opcodes(path: Path) -> dict[int, tuple[str, int]]:
    """opcode number -> (snake_case name, line) from the MessageType enum."""
    text = path.read_text(encoding="utf-8", errors="replace")
    code = _CODE_STRIP_RE.sub(
        lambda m: re.sub(r"[^\n]", " ", m.group(0)), text)
    enum = MESSAGE_TYPE_ENUM_RE.search(code)
    opcodes: dict[int, tuple[str, int]] = {}
    if not enum:
        return opcodes
    for m in ENUM_ENTRY_RE.finditer(enum.group(1)):
        lineno = code.count("\n", 0, enum.start(1) + m.start()) + 1
        opcodes[int(m.group(2))] = (camel_to_snake(m.group(1)), lineno)
    return opcodes


def doc_opcodes(path: Path) -> dict[int, tuple[str, int]]:
    """opcode number -> (name, line) from the wire doc's request table."""
    opcodes: dict[int, tuple[str, int]] = {}
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8", errors="replace").splitlines(),
            start=1):
        row = OPCODE_ROW_RE.match(line)
        if row:
            opcodes.setdefault(int(row.group(1)), (row.group(2), lineno))
    return opcodes


def lint_opcodes(root: Path) -> list[Violation]:
    header = root / "src/net/messages.h"
    doc = root / "docs/WIRE_PROTOCOL.md"
    if not header.is_file() or not doc.is_file():
        return []
    src = enum_opcodes(header)
    documented = doc_opcodes(doc)
    header_rel = Path("src/net/messages.h")
    doc_rel = Path("docs/WIRE_PROTOCOL.md")
    out: list[Violation] = []
    for number in sorted(src):
        name, lineno = src[number]
        if number not in documented:
            out.append(Violation(
                header_rel, lineno, "opcode-undocumented",
                f"MessageType::k* opcode {number} ('{name}') has no row in "
                f"the {doc_rel.as_posix()} request table"))
        elif documented[number][0] != name:
            out.append(Violation(
                header_rel, lineno, "opcode-undocumented",
                f"opcode {number} is '{name}' in the enum but documented "
                f"as '{documented[number][0]}' in {doc_rel.as_posix()}"))
    for number in sorted(documented):
        if number not in src:
            name, lineno = documented[number]
            out.append(Violation(
                doc_rel, lineno, "opcode-ghost",
                f"request-table row for opcode {number} ('{name}') matches "
                "no MessageType enumerator (renamed or deleted? update the "
                "table)"))
    return out


def lint_catalogs(root: Path) -> list[Violation]:
    out: list[Violation] = []
    fault_doc = root / "docs/FAULT_INJECTION.md"
    if fault_doc.is_file():
        out.extend(cross_check(
            scan_src_calls(root, FAILPOINT_CALL_RE),
            doc_catalog_names(fault_doc),
            Path("docs/FAULT_INJECTION.md"), "failpoint",
            "site checked in src/"))
    obs_doc = root / "docs/OBSERVABILITY.md"
    if obs_doc.is_file():
        out.extend(cross_check(
            scan_src_calls(root, METRIC_CALL_RE),
            doc_catalog_names(obs_doc),
            Path("docs/OBSERVABILITY.md"), "metric",
            "instrument registered in src/"))
    out.extend(lint_opcodes(root))
    return out


def run_lint(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_docs(root):
        violations.extend(lint_doc(path, root))
    violations.extend(lint_catalogs(root))
    return violations


# --- self-test --------------------------------------------------------------

ALL_RULES = frozenset({
    "broken-link", "stale-path",
    "failpoint-undocumented", "failpoint-ghost",
    "metric-undocumented", "metric-ghost",
    "opcode-undocumented", "opcode-ghost",
})

# rule -> fixture file expected to trigger it (paths inside
# doc_lint_fixtures/). The *-undocumented rules fire at the call site in
# the fixture source; the *-ghost rules fire on the catalog doc.
EXPECTED_SELF_TEST = {
    "broken-link": "README.md",
    "stale-path": "docs/bad_paths.md",
    "failpoint-undocumented": "src/common/chaos.cpp",
    "failpoint-ghost": "docs/FAULT_INJECTION.md",
    "metric-undocumented": "src/common/chaos.cpp",
    "metric-ghost": "docs/OBSERVABILITY.md",
    "opcode-undocumented": "src/net/messages.h",
    "opcode-ghost": "docs/WIRE_PROTOCOL.md",
}


def run_self_test(fixtures: Path) -> int:
    violations = run_lint(fixtures)
    found = {(v.rule, v.path.as_posix()) for v in violations}
    failures = []
    for rule in sorted(ALL_RULES - set(EXPECTED_SELF_TEST)):
        failures.append(f"self-test: rule '{rule}' has no seeded fixture")
    for v in violations:
        if v.rule not in ALL_RULES:
            failures.append(f"self-test: rule '{v.rule}' missing from "
                            "ALL_RULES")
    for rule, doc in EXPECTED_SELF_TEST.items():
        if (rule, doc) not in found:
            failures.append(f"self-test: rule '{rule}' did not fire on "
                            f"{doc}")
    # The clean fixture references real files and external links; any
    # violation on it is a false positive. Likewise the cataloged halves of
    # the cross-check pairs must not be reported from either direction.
    for v in violations:
        if v.path.as_posix() == "docs/good.md":
            failures.append(f"self-test: false positive on clean fixture: "
                            f"{v}")
        if "'fixture.documented'" in v.message or \
                "'fix.documented'" in v.message:
            failures.append(f"self-test: false positive on cataloged name: "
                            f"{v}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        return 1
    print(f"self-test OK: {len(EXPECTED_SELF_TEST)} violation classes "
          "caught, clean fixture clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixtures and verify every "
                             "violation class is caught")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(
            Path(__file__).resolve().parent / FIXTURE_DIR_NAME)

    violations = run_lint(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"doc_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("doc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
