#!/usr/bin/env python3
"""doc_lint: the documentation-consistency linter.

Docs rot silently: a file gets renamed, a doc keeps pointing at the old
name, and the next reader chases a ghost. This linter makes doc drift a
test failure (ctest `doc_lint`), checking every tracked markdown file:

  broken-link   every relative markdown link target ([text](path) where
                path is not http(s)/mailto/#anchor) must resolve on disk,
                relative to the linking document's directory.
  stale-path    every repo path a doc mentions (src/..., tests/...,
                bench/..., tools/..., examples/..., docs/...) must exist —
                either exactly, or as a directory, or with a standard
                suffix appended (e.g. `src/common/metrics` + .h/.cpp covers
                the "metrics.{h,cpp}" brace shorthand). Mentions containing
                glob characters are skipped.

Scanned documents: README.md, DESIGN.md, EXPERIMENTS.md, ROADMAP.md,
CLAUDE.md, CHANGES.md, and docs/*.md.

Usage:
  tools/doc_lint.py [--root DIR]   lint the repo (default: repo root)
  tools/doc_lint.py --self-test    run against the seeded-violation
                                   fixtures in tools/doc_lint_fixtures and
                                   fail unless every expected violation
                                   fires

Exit status: 0 clean, 1 violations (printed one per line as
"path:line: rule: message").
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

TOP_LEVEL_DOCS = ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
                  "CLAUDE.md", "CHANGES.md")
FIXTURE_DIR_NAME = "doc_lint_fixtures"

# [text](target) — target captured up to the closing paren. Images
# (![alt](target)) match too, which is what we want.
MARKDOWN_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# A repo path: one of the source trees, then at least one path character.
# The lookbehind keeps `build/bench/...` from matching its `bench/` tail.
REPO_PATH_RE = re.compile(
    r"(?<![\w/\-.])(?:src|tests|bench|tools|examples|docs)/[\w./\-]+"
)

# Suffixes tried when a bare mention doesn't exist as written; covers the
# `metrics.{h,cpp}` brace shorthand and extensionless tool references.
ACCEPTED_SUFFIXES = ("", ".h", ".cpp", ".py", ".sh", ".md")


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def iter_docs(root: Path):
    for name in TOP_LEVEL_DOCS:
        path = root / name
        if path.is_file():
            yield path
    docs = root / "docs"
    if docs.is_dir():
        yield from sorted(docs.glob("*.md"))


def path_exists(root: Path, mention: str) -> bool:
    mention = mention.rstrip("/").rstrip(".,:;")
    if not mention:
        return True
    for suffix in ACCEPTED_SUFFIXES:
        if (root / (mention + suffix)).exists():
            return True
    return False


def lint_doc(path: Path, root: Path) -> list[Violation]:
    rel = path.relative_to(root)
    text = path.read_text(encoding="utf-8", errors="replace")
    out: list[Violation] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in MARKDOWN_LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = target.split("#", 1)[0]  # drop the anchor
            if not resolved:
                continue
            if not (path.parent / resolved).exists():
                out.append(Violation(
                    rel, lineno, "broken-link",
                    f"link target '{target}' does not resolve (relative to "
                    f"{rel.parent.as_posix()}/)"))

        for match in REPO_PATH_RE.finditer(line):
            mention = match.group(0)
            tail = line[match.end():match.end() + 1]
            if tail in ("*", "?", "{", "["):
                continue  # glob / brace shorthand — not a literal path
            if any(ch in mention for ch in "*?[]{}"):
                continue
            if not path_exists(root, mention):
                out.append(Violation(
                    rel, lineno, "stale-path",
                    f"mentions '{mention}', which does not exist in the "
                    "repo (renamed or deleted?)"))

    return out


def run_lint(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_docs(root):
        violations.extend(lint_doc(path, root))
    return violations


# --- self-test --------------------------------------------------------------

ALL_RULES = frozenset({"broken-link", "stale-path"})

# rule -> fixture doc expected to trigger it (paths inside
# doc_lint_fixtures/).
EXPECTED_SELF_TEST = {
    "broken-link": "README.md",
    "stale-path": "docs/bad_paths.md",
}


def run_self_test(fixtures: Path) -> int:
    violations = run_lint(fixtures)
    found = {(v.rule, v.path.as_posix()) for v in violations}
    failures = []
    for rule in sorted(ALL_RULES - set(EXPECTED_SELF_TEST)):
        failures.append(f"self-test: rule '{rule}' has no seeded fixture")
    for v in violations:
        if v.rule not in ALL_RULES:
            failures.append(f"self-test: rule '{v.rule}' missing from "
                            "ALL_RULES")
    for rule, doc in EXPECTED_SELF_TEST.items():
        if (rule, doc) not in found:
            failures.append(f"self-test: rule '{rule}' did not fire on "
                            f"{doc}")
    # The clean fixture references real files and external links; any
    # violation on it is a false positive.
    for v in violations:
        if v.path.as_posix() == "docs/good.md":
            failures.append(f"self-test: false positive on clean fixture: "
                            f"{v}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        return 1
    print(f"self-test OK: {len(EXPECTED_SELF_TEST)} violation classes "
          "caught, clean fixture clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixtures and verify every "
                             "violation class is caught")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(
            Path(__file__).resolve().parent / FIXTURE_DIR_NAME)

    violations = run_lint(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"doc_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("doc_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
