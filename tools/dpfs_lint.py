#!/usr/bin/env python3
"""dpfs_lint: the repo-invariant linter.

Enforces the DPFS conventions that the compiler cannot (all previously prose
in CLAUDE.md), as a ctest test so every build runs them:

  layout-purity      src/layout is pure math: no I/O, OS, threading, or
                     other-subsystem includes (the TCP executor and the
                     simulator both consume its IoPlan; purity keeps them
                     pinned to the same math).
  rooted-includes    quoted includes are rooted at src/ (or the including
                     tree); no "../" or "./" relative paths.
  no-exceptions      no throw/catch in public API headers (src/**/*.h);
                     fallible APIs return Status/Result<T>.
  nodiscard-status   Status and Result<T> keep their [[nodiscard]] class
                     attributes, so the compiler flags dropped errors
                     (the lint guards the attribute; the compiler does the
                     per-call-site work).
  raw-mutex          production code uses the annotated dpfs::Mutex /
                     MutexLock / CondVar (common/mutex.h), never raw
                     std::mutex & friends — otherwise Clang's thread-safety
                     analysis cannot see the locking.
  failpoint-disarm   any test file that arms a failpoint also calls
                     failpoint::DisarmAll() (teardown hygiene: leaked arms
                     poison later tests in the same binary).
  opcode-names       every MessageType enumerator in src/net/messages.h has
                     a case in MessageTypeName (src/net/messages.cpp) — the
                     name feeds per-opcode metrics and error messages, and
                     a forgotten case silently reports "unknown".
  assign-or-return-case
                     DPFS_ASSIGN_OR_RETURN declares a variable, so a case
                     label that uses it must brace its body — otherwise the
                     declaration is in scope for the jump to every later
                     label ("jump to case label crosses initialization").
                     The lint reports it as a convention violation with the
                     fix, instead of leaving it to a cryptic compile error.

Usage:
  tools/dpfs_lint.py [--root DIR]   lint the repo (default: repo root)
  tools/dpfs_lint.py --self-test    run against the seeded-violation
                                    fixtures in tools/lint_fixtures and fail
                                    unless every expected violation fires

Exit status: 0 clean, 1 violations (printed one per line as
"path:line: rule: message").
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_TREES = ("src", "tests", "bench", "tools", "examples")
SOURCE_SUFFIXES = {".h", ".cpp", ".cc", ".hpp"}
FIXTURE_DIR_NAME = "lint_fixtures"

# Headers that imply I/O, OS services, or threading — all banned in
# src/layout. Matched against the full <...> include path.
LAYOUT_BANNED_SYSTEM = re.compile(
    r"^(fstream|iostream|cstdio|stdio\.h|filesystem|thread|mutex|"
    r"shared_mutex|condition_variable|future|unistd\.h|fcntl\.h|"
    r"sys/.*|netinet/.*|arpa/.*|poll\.h|csignal|signal\.h)$"
)
# Subsystems src/layout may depend on (itself and the pure parts of common).
LAYOUT_ALLOWED_PREFIXES = ("layout/", "common/status.h", "common/strings.h",
                          "common/bytes.h")

RAW_MUTEX_TOKENS = re.compile(
    r"std::(recursive_|timed_|recursive_timed_|shared_|shared_timed_)?mutex\b|"
    r"std::lock_guard\b|std::unique_lock\b|std::scoped_lock\b|"
    r"std::shared_lock\b|std::condition_variable\b"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(?:"([^"]+)"|<([^>]+)>)')

# Delimiters the comment/string stripper understands, in scan order. String
# literals are recognized so a comment-opener inside one is not stripped.
_STRIP_RE = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:\\.|[^"\\\n])*"|\'(?:\\.|[^\'\\\n])*\'',
    re.DOTALL,
)


def _blank_match(keep_strings: bool):
    def blank(match: re.Match[str]) -> str:
        token = match.group(0)
        if keep_strings and token[0] in "\"'":
            return token
        return re.sub(r"[^\n]", " ", token)

    return blank


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and literals, preserving newlines for line numbers."""
    return _STRIP_RE.sub(_blank_match(keep_strings=False), text)


def strip_comments(text: str) -> str:
    """Blanks comments only (include paths are string-like and must stay)."""
    return _STRIP_RE.sub(_blank_match(keep_strings=True), text)


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule}: {self.message}"


def iter_source_files(root: Path):
    for tree in SOURCE_TREES:
        base = root / tree
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES:
                continue
            if FIXTURE_DIR_NAME in path.relative_to(root).parts:
                continue  # seeded violations for --self-test
            yield path


def relpath(path: Path, root: Path) -> Path:
    try:
        return path.relative_to(root)
    except ValueError:
        return path


def lint_file(path: Path, root: Path) -> list[Violation]:
    rel = relpath(path, root)
    rel_posix = rel.as_posix()
    text = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(text)
    lines = code.splitlines()
    include_lines = strip_comments(text).splitlines()
    out: list[Violation] = []

    in_layout = rel_posix.startswith("src/layout/")
    in_src = rel_posix.startswith("src/")
    is_header = path.suffix in {".h", ".hpp"}
    is_test = rel_posix.startswith("tests/")

    for lineno, line in enumerate(lines, start=1):
        m = INCLUDE_RE.match(include_lines[lineno - 1]) \
            if lineno <= len(include_lines) else None
        if m:
            quoted, angled = m.group(1), m.group(2)
            if quoted is not None and (
                quoted.startswith("../") or quoted.startswith("./")
            ):
                out.append(Violation(
                    rel, lineno, "rooted-includes",
                    f'relative include "{quoted}" — include paths are '
                    "rooted at src/ (e.g. \"layout/plan.h\")"))
            if in_layout:
                if angled is not None and LAYOUT_BANNED_SYSTEM.match(angled):
                    out.append(Violation(
                        rel, lineno, "layout-purity",
                        f"src/layout must stay pure math; <{angled}> brings "
                        "in I/O/OS/threading"))
                if quoted is not None and not quoted.startswith(
                        LAYOUT_ALLOWED_PREFIXES):
                    out.append(Violation(
                        rel, lineno, "layout-purity",
                        f'src/layout may not depend on "{quoted}" (allowed: '
                        "layout/*, common/status|strings|bytes)"))
            if (in_src and angled in ("mutex", "condition_variable")
                    and rel_posix != "src/common/mutex.h"):
                out.append(Violation(
                    rel, lineno, "raw-mutex",
                    f"<{angled}> outside common/mutex.h — use the annotated "
                    "dpfs::Mutex/MutexLock/CondVar"))

        if in_src and rel_posix != "src/common/mutex.h":
            m2 = RAW_MUTEX_TOKENS.search(line)
            if m2:
                out.append(Violation(
                    rel, lineno, "raw-mutex",
                    f"{m2.group(0)} outside common/mutex.h — raw std "
                    "primitives are invisible to the thread-safety "
                    "analysis"))

        if in_src and is_header:
            if re.search(r"\bthrow\b|\bcatch\s*\(", line):
                out.append(Violation(
                    rel, lineno, "no-exceptions",
                    "throw/catch in a public API header — fallible APIs "
                    "return Status/Result<T>"))

    if is_test and re.search(r"failpoint::Arm\w*\s*\(|ArmFromString\s*\(",
                             code):
        if "DisarmAll" not in code:
            out.append(Violation(
                rel, 1, "failpoint-disarm",
                "arms a failpoint but never calls failpoint::DisarmAll() "
                "(required in teardown)"))

    out.extend(lint_assign_case(rel, code))

    return out


# `case <const-expr>:` / `default:` labels. The case expression may contain
# scoped enumerators, so `::` is allowed and the label colon is the first
# single colon (`(?<!:):(?!:)`).
CASE_LABEL_RE = re.compile(
    r"\b(?:case\b(?:[^:{};]|::)*?|default\s*)(?<!:):(?!:)")


def lint_assign_case(rel: Path, code: str) -> list[Violation]:
    """Flags DPFS_ASSIGN_OR_RETURN directly under an unbraced case label."""
    out: list[Violation] = []
    for label in CASE_LABEL_RE.finditer(code):
        i = label.end()
        while i < len(code) and code[i].isspace():
            i += 1
        if i >= len(code) or code[i] == "{":
            continue  # braced case body: the declaration is scoped
        # Collect the label's depth-0 body: up to the next case/default
        # label or the `}` that closes the switch. Nested braced blocks
        # scope their own declarations and are skipped.
        depth = 0
        top_level: list[str] = []
        j = i
        while j < len(code):
            ch = code[j]
            if ch == "{":
                depth += 1
            elif ch == "}":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0:
                if CASE_LABEL_RE.match(code, j) and j != i:
                    break
                top_level.append(ch)
            j += 1
        body = "".join(top_level)
        m = re.search(r"\bDPFS_ASSIGN_OR_RETURN\s*\(", body)
        if m:
            # Line of the macro: offset of the label end + blanks skipped
            # puts us at i; the body string has 1:1 newlines with code[i:j]
            # at depth 0 only, so recover the line from the code offset of
            # the first macro occurrence at depth 0 instead.
            macro_off = code.find("DPFS_ASSIGN_OR_RETURN", i, j)
            lineno = code.count("\n", 0, macro_off) + 1
            out.append(Violation(
                rel, lineno, "assign-or-return-case",
                "DPFS_ASSIGN_OR_RETURN under an unbraced case label — the "
                "macro declares a variable, so brace the case body "
                "(`case X: { ... }`)"))
    return out


def lint_status_header(root: Path) -> list[Violation]:
    rel = Path("src/common/status.h")
    path = root / rel
    out: list[Violation] = []
    if not path.is_file():
        out.append(Violation(rel, 1, "nodiscard-status",
                             "src/common/status.h is missing"))
        return out
    text = path.read_text(encoding="utf-8", errors="replace")
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Status\b", text):
        out.append(Violation(
            rel, 1, "nodiscard-status",
            "class Status has lost its [[nodiscard]] attribute — dropped "
            "errors would compile silently"))
    if not re.search(r"class\s+\[\[nodiscard\]\]\s+Result\b", text):
        out.append(Violation(
            rel, 1, "nodiscard-status",
            "class Result<T> has lost its [[nodiscard]] attribute — dropped "
            "errors would compile silently"))
    return out


ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*=\s*\d+\s*,?", re.MULTILINE)
NAME_CASE_RE = re.compile(r"case\s+MessageType::(k\w+)\s*:")


def lint_opcode_names(root: Path) -> list[Violation]:
    """Every MessageType enumerator must round-trip through MessageTypeName."""
    header = root / "src/net/messages.h"
    impl = root / "src/net/messages.cpp"
    if not header.is_file() or not impl.is_file():
        return []
    header_text = strip_comments_and_strings(
        header.read_text(encoding="utf-8", errors="replace"))
    enum_match = re.search(
        r"enum\s+class\s+MessageType[^{]*\{(.*?)\};", header_text, re.DOTALL)
    if enum_match is None:
        return [Violation(Path("src/net/messages.h"), 1, "opcode-names",
                          "enum class MessageType not found")]
    enumerators = ENUMERATOR_RE.findall(enum_match.group(1))
    impl_text = strip_comments_and_strings(
        impl.read_text(encoding="utf-8", errors="replace"))
    named = set(NAME_CASE_RE.findall(impl_text))
    out: list[Violation] = []
    for enumerator in enumerators:
        if enumerator not in named:
            out.append(Violation(
                Path("src/net/messages.cpp"), 1, "opcode-names",
                f"MessageType::{enumerator} has no case in MessageTypeName — "
                "per-opcode metrics and error messages would report "
                "\"unknown\""))
    return out


def run_lint(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for path in iter_source_files(root):
        violations.extend(lint_file(path, root))
    violations.extend(lint_status_header(root))
    violations.extend(lint_opcode_names(root))
    return violations


# --- self-test --------------------------------------------------------------

# Every rule the linter implements. A new rule must be added here AND given
# a seeded fixture in EXPECTED_SELF_TEST, or the self-test fails.
ALL_RULES = frozenset({
    "layout-purity", "rooted-includes", "no-exceptions",
    "nodiscard-status", "raw-mutex", "failpoint-disarm",
    "opcode-names", "assign-or-return-case",
})

# rule -> fixture file expected to trigger it (paths inside lint_fixtures/).
EXPECTED_SELF_TEST = {
    "layout-purity": "src/layout/bad_io.h",
    "rooted-includes": "src/client/bad_relative.cpp",
    "no-exceptions": "src/server/bad_throw.h",
    "raw-mutex": "src/core/bad_mutex.cpp",
    "failpoint-disarm": "tests/common/bad_failpoint_test.cpp",
    "nodiscard-status": "src/common/status.h",
    "opcode-names": "src/net/messages.cpp",
    "assign-or-return-case": "src/metad/bad_case.cpp",
}


def run_self_test(fixtures: Path) -> int:
    violations = run_lint(fixtures)
    found = {(v.rule, v.path.as_posix()) for v in violations}
    failures = []
    for rule in sorted(ALL_RULES - set(EXPECTED_SELF_TEST)):
        failures.append(f"self-test: rule '{rule}' has no seeded fixture")
    for v in violations:
        if v.rule not in ALL_RULES:
            failures.append(f"self-test: rule '{v.rule}' missing from "
                            "ALL_RULES")
    for rule, path in EXPECTED_SELF_TEST.items():
        if (rule, path) not in found:
            failures.append(f"self-test: rule '{rule}' did not fire on "
                            f"{path}")
    # A clean file seeded alongside the violations must stay clean.
    clean = [v for v in violations
             if v.path.as_posix() == "src/layout/good_pure.h"]
    for v in clean:
        failures.append(f"self-test: false positive on clean fixture: {v}")
    for line in failures:
        print(line, file=sys.stderr)
    if failures:
        return 1
    print(f"self-test OK: {len(EXPECTED_SELF_TEST)} violation classes "
          "caught, clean fixture clean")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root to lint")
    parser.add_argument("--self-test", action="store_true",
                        help="lint the seeded fixtures and verify every "
                             "violation class is caught")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test(
            Path(__file__).resolve().parent / FIXTURE_DIR_NAME)

    violations = run_lint(args.root)
    for v in violations:
        print(v, file=sys.stderr)
    if violations:
        print(f"dpfs_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("dpfs_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
