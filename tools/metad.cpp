// dpfs-metad — the standalone DPFS metadata server daemon (extension:
// `metadata_endpoint`; docs/METADATA_SCHEMA.md "Remote access").
//
//   dpfs-metad --metadb /shared/dpfs-meta [--metadb-shards 1] [--port 7060]
//              [--max-sessions 0] [--engine thread|event] [--metrics-port 0]
//
// Owns the metadata database (and its advisory flock) and serves the
// kMeta* namespace opcodes; dpfsd registers through it with --metad, and
// any number of dpfs / application clients share the namespace it exports.
// Runs until SIGINT/SIGTERM.
#include <csignal>
#include <cstdio>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/log.h"
#include "common/options.h"
#include "metad/metad.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

}  // namespace

int main(int argc, char** argv) {
  using namespace dpfs;
  // Liveness lines must reach log files promptly (supervisors and the
  // deployment test tail them), not sit in a block buffer until exit.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  SetLogLevel(LogLevel::kInfo);
  const Options opts = Options::Parse(argc, argv).value();
  if (!opts.Has("metadb")) {
    std::fprintf(stderr,
                 "usage: dpfs-metad --metadb DIR [--metadb-shards N] "
                 "[--port N]\n"
                 "                  [--max-sessions N] "
                 "[--engine thread|event] [--metrics-port N]\n");
    return 2;
  }

  metad::MetadOptions options;
  options.port = static_cast<std::uint16_t>(opts.GetInt("port", 0));
  options.max_sessions =
      static_cast<std::size_t>(opts.GetInt("max-sessions", 0));
  const std::string engine = opts.GetString("engine", "thread");
  if (engine == "event") {
    options.engine = server::ServerEngine::kEventLoop;
  } else if (engine != "thread") {
    std::fprintf(stderr, "dpfs-metad: --engine must be 'thread' or 'event'\n");
    return 2;
  }
  options.metrics_port =
      static_cast<std::uint16_t>(opts.GetInt("metrics-port", 0));

  Result<std::unique_ptr<metadb::ShardedDatabase>> db =
      metadb::ShardedDatabase::Open(
          opts.GetString("metadb", ""),
          static_cast<std::size_t>(opts.GetInt("metadb-shards", 1)));
  if (!db.ok()) {
    std::fprintf(stderr, "dpfs-metad: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::shared_ptr<metadb::ShardedDatabase> shared = std::move(db).value();

  Result<std::unique_ptr<metad::MetadService>> started =
      metad::MetadService::Start(shared, options);
  if (!started.ok()) {
    std::fprintf(stderr, "dpfs-metad: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  const std::unique_ptr<metad::MetadService>& service = started.value();
  std::printf("dpfs-metad: serving %s on %s\n",
              opts.GetString("metadb", "").c_str(),
              service->endpoint().ToString().c_str());
  if (service->metrics_http_port() != 0) {
    std::printf("dpfs-metad: metrics at http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(service->metrics_http_port()));
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  std::printf("dpfs-metad: shutting down (%llu requests served)\n",
              static_cast<unsigned long long>(
                  service->stats().requests.load()));
  service->Stop();
  return 0;
}
